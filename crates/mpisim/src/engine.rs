//! The rank scheduler: executes a [`JobSpec`] against a platform model.
//!
//! Each rank is a cursor over its op *source* plus a clock: the engine pulls
//! the next op on demand ([`crate::op::OpSource::next_op`]) instead of
//! indexing into a materialized slice, so a streamed job never holds its
//! full trace in memory. The driver repeatedly picks the minimum-clock
//! *ready* rank and executes one op. A rank that blocks (recv, exchange,
//! wait, collective) is completed by its peer's progress, never by
//! re-examining the op, so no op needs to be cached across a block.
//! Interactions (messages, collectives, exchanges) only ever move other
//! ranks' clocks forward, and point-to-point matching is FIFO per
//! `(source, dest, tag)` channel, so this greedy order is causally correct
//! and deterministic.
//!
//! Time accounting follows IPM's semantics: a rank's wait inside a blocking
//! call counts as communication time — IPM cannot tell wire time from wait
//! time either, and the paper's %comm numbers include both.

use crate::channels::{ChannelTable, SeqBarrier};
use crate::collectives::CollTopo;
use crate::op::{CollOp, Group, JobMeta, JobSpec, Op, OpSource, Rank, ReqId, SectionId, Tag};
use crate::prof::{IoKind, MpiKind, ProfEvent, ProfSink};
use crate::result::{RankTotals, SimResult};
use sim_des::{DetRng, EventQueue, FxHashMap, SimDur, SimTime};
use sim_faults::{FaultSchedule, FaultSpec, RecoveryStrategy, RetryPolicy, SdcEvent};
use sim_net::{cost, ContentionParams, SerialResource};
use sim_platform::{ClusterSpec, Placement, PlacementError, RankRates, Strategy};

/// Errors a simulation can produce.
#[derive(Debug)]
pub enum SimError {
    /// The ranks could not be placed on the cluster.
    Placement(PlacementError),
    /// The job failed structural validation.
    Validation(String),
    /// All live ranks are blocked and nothing can make progress.
    Deadlock(String),
    /// The engine hit a malformed construct at runtime (out-of-range rank,
    /// wait on an unknown request, mismatched collective sequence). Only
    /// reachable with `validate: false`; with validation on these are
    /// caught up front as [`SimError::Validation`].
    Malformed(String),
    /// An op stalled on a crashed node exhausted its retry budget.
    RetryExhausted(String),
    /// An engine invariant broke (a barrier released without its state, a
    /// recovery fired without an active fault schedule). Indicates a bug in
    /// the engine itself, surfaced as a typed error instead of a panic.
    Internal(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Placement(e) => write!(f, "placement failed: {e}"),
            SimError::Validation(e) => write!(f, "job validation failed: {e}"),
            SimError::Deadlock(e) => write!(f, "simulation deadlocked: {e}"),
            SimError::Malformed(e) => write!(f, "malformed program: {e}"),
            SimError::RetryExhausted(e) => write!(f, "retries exhausted: {e}"),
            SimError::Internal(e) => write!(f, "engine invariant violated: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        SimError::Placement(e)
    }
}

/// Simulation configuration: where and how to run a job.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed for all noise models (jitter); two runs with the same seed
    /// are bit-identical.
    pub seed: u64,
    /// Placement strategy.
    pub strategy: Strategy,
    /// Validate the job's structure before running (cheap; on by default).
    pub validate: bool,
    /// Optional fault injection. `None` (the default) and a spec whose
    /// schedule generates no windows are both exact no-ops: the run is
    /// bit-identical to a fault-free one.
    pub faults: Option<FaultSpec>,
    /// Optional co-tenant load sharing this job's inter-node links (set by
    /// the cluster scheduler when jobs overlap on a switch or uplink).
    /// `None` (the default) and a background whose multiplier is exactly 1
    /// are both exact no-ops: a job running alone is bit-identical to a
    /// pre-multi-tenancy run.
    pub background: Option<Background>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC10D_51B1,
            strategy: Strategy::Block,
            validate: true,
            faults: None,
            background: None,
        }
    }
}

/// Co-tenant traffic competing with a job for its inter-node fabric.
///
/// The engine folds the contention into the run by degrading the cluster's
/// *inter*-node [`sim_net::FabricParams`] once, up front, by the model's
/// multiplier — every point-to-point, exchange, collective and NIC
/// occupancy path then inherits the slowdown through the ordinary cost
/// algebra. Intra-node (shared-memory) traffic is unaffected, matching the
/// physical picture: co-tenants contend for switch ports, not a victim's
/// memory bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Background {
    /// Effective number of *other* communication-active tenants on the
    /// job's links; fractional values weight part-time communicators.
    pub sharers: f64,
    /// Contention model, normally [`ContentionParams::for_fabric`] of the
    /// cluster's inter fabric so engine and scheduler agree.
    pub params: ContentionParams,
}

impl Background {
    /// Build a background load using `cluster`'s own inter-fabric
    /// sensitivity.
    pub fn on_cluster(cluster: &ClusterSpec, sharers: f64) -> Background {
        Background {
            sharers,
            params: ContentionParams::for_fabric(&cluster.topology.inter),
        }
    }

    /// The slowdown multiplier applied to the inter-node fabric.
    pub fn factor(&self) -> f64 {
        self.params.multiplier(self.sharers)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    Ready,
    BlockedRecv {
        from: Rank,
        tag: Tag,
        bytes: usize,
        posted: SimTime,
    },
    BlockedExchange {
        posted: SimTime,
    },
    BlockedWait {
        req: ReqId,
        posted: SimTime,
    },
    BlockedColl {
        posted: SimTime,
    },
    Done,
}

struct RankState {
    clock: SimTime,
    /// Ops pulled from this rank's source so far (diagnostics only).
    issued: u64,
    status: Status,
    /// Outstanding non-blocking requests. Fx-hashed: request ids are
    /// simulation-internal, so SipHash's flood resistance buys nothing.
    requests: FxHashMap<ReqId, ReqState>,
    comp: SimDur,
    comm: SimDur,
    io: SimDur,
    /// Time lost to fault stalls and restart gaps.
    fault: SimDur,
    /// Per-communicator collective sequence counters. A rank participates
    /// in a handful of communicators at most, so a linear scan over a
    /// short `Vec` beats hashing the `Group` key every collective.
    coll_count: Vec<(Group, u64)>,
    /// Monotone generation for lazy heap invalidation.
    gen: u64,
    rng: DetRng,
    /// End of this rank's most recent file operation (I/O concurrency).
    io_until: SimTime,
}

impl RankState {
    /// Fetch-and-increment this rank's collective sequence on `group`.
    fn next_coll_seq(&mut self, group: Group) -> u64 {
        for (g, c) in &mut self.coll_count {
            if *g == group {
                let seq = *c;
                *c += 1;
                return seq;
            }
        }
        self.coll_count.push((group, 1));
        0
    }
}

#[derive(Debug, Clone, Copy)]
struct EagerMsg {
    arrival: SimTime,
    bytes: usize,
    /// Receive-side occupancy (seconds) computed from the route's fabric at
    /// send time.
    recv_occ: f64,
}

/// State of a non-blocking request on its owning rank.
#[derive(Debug, Clone, Copy)]
enum ReqState {
    /// Operation finished (or will finish) at `complete_at`.
    Done {
        complete_at: SimTime,
        bytes: u64,
        kind: MpiKind,
    },
    /// An `Irecv` still waiting for its message.
    RecvPending,
}

#[derive(Debug, Clone, Copy)]
struct ExchangeArrival {
    rank: Rank,
    entry: SimTime,
    send_bytes: usize,
}

struct CollState {
    op: CollOp,
    arrived: Vec<(Rank, SimTime)>,
}

/// Memoized placement facts for one communicator. Placement never changes
/// during a run (shrink recovery is modeled in place), so the per-node
/// member counts the collective cost model needs are computed once per
/// group instead of rebuilt with a fresh map on every collective arrival.
#[derive(Debug, Clone, Copy)]
struct GroupLayout {
    /// Most member ranks sharing one node (NIC sharers).
    ppn: usize,
    /// Distinct nodes the group's members span.
    nodes_used: usize,
    /// Worst member CPU slowdown factor (>= 1).
    cpu_factor: f64,
}

/// Compute a group's layout by one pass over its members.
fn group_layout(
    group: Group,
    np: usize,
    n_nodes: usize,
    rates: &[RankRates],
    cpu_factor: &[f64],
) -> GroupLayout {
    let mut per_node = vec![0usize; n_nodes];
    let mut ppn = 0usize;
    let mut nodes_used = 0usize;
    let mut cf = 1.0_f64;
    for m in group.members(np) {
        let node = rates[m as usize].node;
        if per_node[node] == 0 {
            nodes_used += 1;
        }
        per_node[node] += 1;
        ppn = ppn.max(per_node[node]);
        cf = cf.max(cpu_factor[m as usize]);
    }
    GroupLayout {
        ppn: ppn.max(1),
        nodes_used,
        cpu_factor: cf,
    }
}

/// Fault state the engine carries during a run.
struct ActiveFaults {
    sched: FaultSchedule,
    retry: RetryPolicy,
    restart_delay: SimDur,
    /// Index of the next unconsumed fatal event in `sched.fatals()`.
    next_fatal: usize,
    /// Index of the next unadjudicated silent corruption in `sched.sdc()`.
    /// Monotone: every corruption is adjudicated at most once (at the first
    /// cut that covers it), so recovery loops always terminate.
    next_sdc: usize,
    /// Corruptions with severity at or above this are caught at a cut.
    sdc_threshold: f64,
    /// How the job recovers from detected corruptions and (for
    /// [`RecoveryStrategy::ShrinkSpare`]) fatal faults.
    recovery: RecoveryStrategy,
    /// Spare nodes still available for shrink recoveries.
    spares_left: u32,
}

/// A verified consistent cut: the rollback target for ABFT and shrink
/// recovery. Recorded when an [`Op::Verify`] completes clean, invalidated
/// by a full restart (the in-memory state it names died with the job).
#[derive(Debug, Clone, Copy)]
struct CutState {
    /// Verify ops each rank fast-forwards past when rolling back here.
    verify_done: u64,
    /// Global checkpoint count at the cut (restored on rollback so
    /// re-executed checkpoints keep aligned sequence ids).
    ckpt_done: u64,
    /// Bytes of the last completed checkpoint at the cut.
    ckpt_bytes: u64,
    /// Per-rank in-memory state a spare must receive on a shrink.
    state_bytes: u64,
}

/// Run `job` on `cluster`. Profile events stream into `sink`.
///
/// Takes `&mut` because op sources are cursors: they are rewound on entry
/// (so one job can be run repeatedly, per the paper's min-of-N methodology)
/// and consumed as the engine pulls ops on demand.
pub fn run_job(
    job: &mut JobSpec,
    cluster: &ClusterSpec,
    cfg: &SimConfig,
    sink: &mut dyn ProfSink,
) -> Result<SimResult, SimError> {
    if cfg.validate {
        job.validate().map_err(SimError::Validation)?;
    }
    let np = job.np();
    if np == 0 {
        return Err(SimError::Validation("empty job: zero ranks".into()));
    }
    // Fold any co-tenant contention into the inter-node fabric up front.
    // A factor of exactly 1 takes the borrowed path, keeping solo runs
    // bit-identical to pre-multi-tenancy builds.
    let factor = cfg.background.map_or(1.0, |b| b.factor());
    let contended;
    let cluster = if factor > 1.0 {
        let mut c = cluster.clone();
        c.topology.inter = c.topology.inter.degraded(factor);
        contended = c;
        &contended
    } else {
        cluster
    };
    let placement = cluster.place(np, cfg.strategy)?;
    let rates = cluster.rank_rates(&placement);
    job.rewind();
    Engine::new(&job.meta, &mut job.sources, cluster, placement, rates, cfg).run(sink)
}

struct Engine<'a> {
    meta: &'a JobMeta,
    sources: &'a mut [OpSource],
    cluster: &'a ClusterSpec,
    placement: Placement,
    rates: Vec<RankRates>,
    /// Per-rank CPU slowdown for the software side of messaging (>= 1).
    cpu_factor: Vec<f64>,
    ranks: Vec<RankState>,
    ready: EventQueue<(usize, u64)>,
    /// In-flight messages, FIFO per channel, indexed by destination rank.
    eager: ChannelTable<EagerMsg>,
    /// Posted-but-unmatched non-blocking receives, FIFO per channel,
    /// indexed by destination rank.
    irecvs: ChannelTable<(usize, ReqId, SimTime)>,
    /// First-arrived halves of exchanges, FIFO per unordered pair + tag,
    /// indexed by the lower rank of the pair.
    exchanges: ChannelTable<ExchangeArrival>,
    /// Open collectives keyed by (communicator, per-communicator sequence).
    colls: FxHashMap<(Group, u64), CollState>,
    /// Memoized world placement layout (collectives, checkpoint/verify
    /// barriers).
    world_layout: GroupLayout,
    /// Memoized layouts of sub-communicators, filled on first use. Jobs
    /// use a handful of distinct groups, so a scanned `Vec` suffices.
    group_layouts: Vec<(Group, GroupLayout)>,
    /// Rank currently being stepped by the run loop (`usize::MAX` outside
    /// a step). `make_ready` defers this rank's heap push so the loop can
    /// service it inline when nothing else can intervene.
    cur: usize,
    /// Whether `cur` became ready again during its step with the push
    /// deferred.
    cur_ready: bool,
    /// Whether deferral is allowed at all: only on fault-free runs, where
    /// no fatal-fault check has to run between steps.
    defer_ok: bool,
    /// Whether the run's sink consumes events; `false` skips `ProfEvent`
    /// construction on the hot path (set from `ProfSink::enabled` at the
    /// top of `run`).
    prof_on: bool,
    /// Per-node NIC egress resources.
    nics: Vec<SerialResource>,
    /// RNG for collective-level jitter.
    coll_rng: DetRng,
    done: usize,
    ops_executed: u64,
    /// Active fault schedule; `None` when the run is fault-free (including
    /// a spec whose schedule came out empty), so the fault-free path pays
    /// nothing and stays bit-identical to pre-fault builds.
    faults: Option<ActiveFaults>,
    /// Fatal faults survived so far.
    restarts: u64,
    /// Globally completed coordinated checkpoints.
    ckpt_done: u64,
    /// Per-rank bytes of the last completed checkpoint (restore cost).
    ckpt_bytes: u64,
    /// After a restart: checkpoints each rank still has to fast-forward
    /// past (ops before the cut are replayed at zero cost).
    skip: Vec<u64>,
    /// Per-rank checkpoint sequence counters (world-synchronized cut ids).
    ckpt_count: Vec<u64>,
    /// Open checkpoint barriers keyed by sequence id.
    ckpts: SeqBarrier,
    /// Per-rank verify sequence counters (world-synchronized cut ids).
    verify_count: Vec<u64>,
    /// Open verify barriers keyed by sequence id.
    verifies: SeqBarrier,
    /// After a rollback: verify ops each rank fast-forwards past (ops
    /// before the verified cut replay at zero cost).
    skip_verify: Vec<u64>,
    /// Most recent clean verified cut, if any.
    cut: Option<CutState>,
    /// ABFT rollbacks performed (detected corruption, no relaunch).
    rollbacks: u64,
    /// Shrink-and-spare recoveries performed.
    shrinks: u64,
    /// Silent corruptions caught at a cut.
    sdc_detected: u64,
    /// Silent corruptions that escaped detection.
    sdc_undetected: u64,
}

impl<'a> Engine<'a> {
    fn new(
        meta: &'a JobMeta,
        sources: &'a mut [OpSource],
        cluster: &'a ClusterSpec,
        placement: Placement,
        rates: Vec<RankRates>,
        cfg: &SimConfig,
    ) -> Self {
        let np = meta.np;
        let solo_rate = cluster.node.flops_rate(1);
        let cpu_factor: Vec<f64> = rates
            .iter()
            .map(|r| (solo_rate / r.flops_rate).max(1.0))
            .collect();
        let mut ready = EventQueue::with_capacity(np + 1);
        let ranks = (0..np)
            .map(|r| {
                ready.push(SimTime::ZERO, (r, 0));
                RankState {
                    clock: SimTime::ZERO,
                    issued: 0,
                    status: Status::Ready,
                    requests: FxHashMap::default(),
                    comp: SimDur::ZERO,
                    comm: SimDur::ZERO,
                    io: SimDur::ZERO,
                    fault: SimDur::ZERO,
                    coll_count: Vec::new(),
                    gen: 0,
                    rng: DetRng::new(cfg.seed, r as u64),
                    io_until: SimTime::ZERO,
                }
            })
            .collect();
        // Expand the fault spec into a concrete schedule over the nodes this
        // placement actually uses — not the whole cluster: a 16-rank job on
        // a 1492-node machine only cares about (and can only be killed by)
        // faults on its own nodes. An empty schedule (zero rates or zero
        // scale) is dropped entirely so the hot path stays fault-free.
        let n_nodes = placement.ranks_per_node.len();
        let faults = cfg.faults.as_ref().and_then(|spec| {
            let active = placement
                .ranks_per_node
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(n, _)| n);
            let sched = FaultSchedule::generate_for(
                &spec.model,
                n_nodes,
                active,
                SimDur::from_secs_f64(spec.horizon_secs),
                cfg.seed,
            );
            if sched.is_empty() {
                None
            } else {
                Some(ActiveFaults {
                    sched,
                    retry: spec.retry,
                    restart_delay: SimDur::from_secs_f64(spec.restart_delay_secs),
                    next_fatal: 0,
                    next_sdc: 0,
                    sdc_threshold: spec.sdc_threshold,
                    recovery: spec.recovery,
                    spares_left: match spec.recovery {
                        RecoveryStrategy::ShrinkSpare { spares, .. } => spares,
                        _ => 0,
                    },
                })
            }
        });
        let world_layout = group_layout(Group::World, np, n_nodes, &rates, &cpu_factor);
        let defer_ok = faults.is_none();
        Engine {
            meta,
            sources,
            cluster,
            nics: vec![SerialResource::new(); n_nodes],
            placement,
            rates,
            cpu_factor,
            ranks,
            ready,
            eager: ChannelTable::new(np),
            irecvs: ChannelTable::new(np),
            exchanges: ChannelTable::new(np),
            colls: FxHashMap::default(),
            world_layout,
            group_layouts: Vec::new(),
            cur: usize::MAX,
            cur_ready: false,
            defer_ok,
            prof_on: true,
            coll_rng: DetRng::new(cfg.seed, np as u64 + 0x1000),
            done: 0,
            ops_executed: 0,
            faults,
            restarts: 0,
            ckpt_done: 0,
            ckpt_bytes: 0,
            skip: vec![0; np],
            ckpt_count: vec![0; np],
            ckpts: SeqBarrier::new(),
            verify_count: vec![0; np],
            verifies: SeqBarrier::new(),
            skip_verify: vec![0; np],
            cut: None,
            rollbacks: 0,
            shrinks: 0,
            sdc_detected: 0,
            sdc_undetected: 0,
        }
    }

    fn run(mut self, sink: &mut dyn ProfSink) -> Result<SimResult, SimError> {
        self.prof_on = sink.enabled();
        let np = self.meta.np;
        loop {
            let Some((t, (r, gen))) = self.ready.pop() else {
                if self.done == np {
                    break;
                }
                return Err(SimError::Deadlock(self.deadlock_report()));
            };
            if self.ranks[r].gen != gen || self.ranks[r].status != Status::Ready {
                continue; // stale heap entry
            }
            // Fatal fault: once the minimum heap time is at or past the next
            // fatal instant, nothing else can happen before it (blocked
            // ranks only advance through ready peers), so the job dies here
            // and recovers — by shrinking onto a spare node when the
            // strategy allows it, else by relaunching from its last
            // completed checkpoint.
            if let Some(f) = self.next_fatal() {
                if t >= f {
                    self.on_fatal(f, sink)?;
                    continue;
                }
            }
            self.cur = r;
            self.cur_ready = false;
            self.step(r, sink)?;
            // Fast path: if the step left this same rank ready again and its
            // clock is strictly below everything in the heap, no other rank
            // can be scheduled in between — service it inline and skip the
            // heap round-trip. Ties go through the heap so the (time, seq)
            // FIFO order — and therefore every tie-broken interaction — is
            // bit-identical to the slow path.
            while self.cur_ready {
                self.cur_ready = false;
                let clock = self.ranks[r].clock;
                if self.ready.peek_time().is_some_and(|pt| pt <= clock) {
                    let gen = self.ranks[r].gen;
                    self.ready.push(clock, (r, gen));
                    break;
                }
                self.step(r, sink)?;
            }
            self.cur = usize::MAX;
        }
        let elapsed = self
            .ranks
            .iter()
            .map(|r| r.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        // Corruptions no cut ever adjudicated escaped every detector.
        self.drain_sdc_at_end(elapsed, sink);
        debug_assert!(self.eager.all_empty(), "eager messages left unreceived");
        let ranks = self
            .ranks
            .iter()
            .map(|r| RankTotals {
                wall: r.clock.since(SimTime::ZERO),
                comp: r.comp,
                comm: r.comm,
                io: r.io,
                fault: r.fault,
            })
            .collect();
        Ok(SimResult {
            job: self.meta.name.clone(),
            cluster: self.cluster.name,
            elapsed: elapsed.since(SimTime::ZERO),
            ranks,
            placement: self.placement,
            ops_executed: self.ops_executed,
            restarts: self.restarts,
            rollbacks: self.rollbacks,
            shrinks: self.shrinks,
            sdc_detected: self.sdc_detected,
            sdc_undetected: self.sdc_undetected,
        })
    }

    /// Time of the next unconsumed fatal fault, if any.
    fn next_fatal(&self) -> Option<SimTime> {
        let a = self.faults.as_ref()?;
        a.sched.fatals().get(a.next_fatal).copied()
    }

    /// Fault factor for fabric costs between two nodes at `t` (>= 1.0).
    fn net_fault_factor(&self, node_a: usize, node_b: usize, t: SimTime) -> f64 {
        match &self.faults {
            Some(a) => a
                .sched
                .net_factor(node_a, t)
                .max(a.sched.net_factor(node_b, t)),
            None => 1.0,
        }
    }

    /// Coordinated restart after a fatal fault at `f`: every rank's program
    /// rewinds, the engine fast-forwards past the last globally completed
    /// checkpoint, and each rank re-charges the restore read. The gap from
    /// each rank's death to the relaunch instant is charged to the fault
    /// ledger and reported as a RESTART event.
    fn do_restart(&mut self, f: SimTime, sink: &mut dyn ProfSink) -> Result<(), SimError> {
        let np = self.meta.np;
        let a = self
            .faults
            .as_mut()
            .ok_or_else(|| SimError::Internal("restart without an active fault schedule".into()))?;
        // Ranks whose last op ran past the fatal instant still count their
        // progress (op granularity); relaunch happens after the provisioning
        // delay, and never before any rank's charged-through clock.
        let max_clock = self
            .ranks
            .iter()
            .map(|s| s.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        let relaunch = (f + a.restart_delay).max(max_clock);
        // Consume this fatal plus any that land inside the outage window.
        while let Some(&ft) = a.sched.fatals().get(a.next_fatal) {
            if ft <= relaunch {
                a.next_fatal += 1;
            } else {
                break;
            }
        }
        self.restarts += 1;
        // Wipe all in-flight state: messages, posted receives, half-open
        // exchanges, open collectives and checkpoint barriers, NIC queues.
        self.eager.clear();
        self.irecvs.clear();
        self.exchanges.clear();
        self.colls.clear();
        self.ckpts.clear();
        self.verifies.clear();
        for nic in &mut self.nics {
            *nic = SerialResource::new();
        }
        self.done = 0;
        // The verified cut named in-memory state; it died with the job.
        self.cut = None;
        let restore_secs = if self.ckpt_done > 0 {
            self.cluster.fs.read_time(self.ckpt_bytes, np)
        } else {
            0.0
        };
        for r in 0..np {
            let st = &mut self.ranks[r];
            let died_at = st.clock;
            sink.on_event(
                r,
                ProfEvent::Restart {
                    start: died_at,
                    end: relaunch,
                },
            );
            st.fault += relaunch.since(died_at);
            st.clock = relaunch;
            st.requests.clear();
            st.coll_count.clear();
            st.io_until = SimTime::ZERO;
            // Replay from the start, discarding everything up to the last
            // completed checkpoint at zero cost. Checkpoint sequence ids
            // resume from the cut so re-taken checkpoints stay aligned;
            // verify ids are re-counted as the skip walks past them.
            self.skip[r] = self.ckpt_done;
            self.ckpt_count[r] = self.ckpt_done;
            self.skip_verify[r] = 0;
            self.verify_count[r] = 0;
            self.sources[r].rewind();
            if restore_secs > 0.0 {
                let start = self.ranks[r].clock;
                let dur = SimDur::from_secs_f64(restore_secs);
                let st = &mut self.ranks[r];
                st.clock += dur;
                st.io += dur;
                st.io_until = st.clock;
                sink.on_event(
                    r,
                    ProfEvent::Io {
                        kind: IoKind::Read,
                        bytes: self.ckpt_bytes,
                        start,
                        end: st.clock,
                    },
                );
            }
            self.make_ready(r);
        }
        Ok(())
    }

    /// Recovery dispatch for a fatal fault at `f`. A ShrinkSpare strategy
    /// with a spare in the pool and a verified cut repairs the communicator
    /// in place; everything else is a full restart.
    fn on_fatal(&mut self, f: SimTime, sink: &mut dyn ProfSink) -> Result<(), SimError> {
        if let Some(a) = self.faults.as_ref() {
            if let RecoveryStrategy::ShrinkSpare {
                respawn_delay_secs, ..
            } = a.recovery
            {
                let state_bytes = self.cut.map(|c| c.state_bytes).unwrap_or(0);
                return self.try_shrink(f, respawn_delay_secs, state_bytes, sink);
            }
        }
        self.do_restart(f, sink)
    }

    /// Recovery dispatch for a corruption detected at a cut ending at `at`.
    fn recover(
        &mut self,
        at: SimTime,
        state_bytes: u64,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let recovery = match &self.faults {
            Some(a) => a.recovery,
            None => return Ok(()),
        };
        match recovery {
            RecoveryStrategy::Restart => self.do_restart(at, sink),
            RecoveryStrategy::AbftRollback => {
                if self.cut.is_some() {
                    self.rollbacks += 1;
                    self.do_rollback(at, SimDur::ZERO, false, sink)
                } else {
                    self.do_restart(at, sink)
                }
            }
            RecoveryStrategy::ShrinkSpare {
                respawn_delay_secs, ..
            } => self.try_shrink(at, respawn_delay_secs, state_bytes, sink),
        }
    }

    /// Shrink onto a spare node if the pool and a verified cut allow it,
    /// else fall back to a full restart. The recovery gap is the spare's
    /// respawn delay plus redistributing `state_bytes` over the inter-node
    /// fabric to repopulate it.
    fn try_shrink(
        &mut self,
        at: SimTime,
        respawn_delay_secs: f64,
        state_bytes: u64,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let can = self.cut.is_some() && self.faults.as_ref().is_some_and(|a| a.spares_left > 0);
        if !can {
            return self.do_restart(at, sink);
        }
        if let Some(a) = self.faults.as_mut() {
            a.spares_left -= 1;
        }
        self.shrinks += 1;
        let inter = &self.cluster.topology.inter;
        let gap = respawn_delay_secs + cost::wire_time(inter, state_bytes as usize) + inter.latency;
        self.do_rollback(at, SimDur::from_secs_f64(gap), true, sink)
    }

    /// ABFT rollback / shrink recovery: the job survives in place. Every
    /// rank's program rewinds and fast-forwards past the last verified cut
    /// at zero cost — surviving ranks still hold that state in memory, and
    /// for a shrink the spare received it during `gap`. Only work after
    /// the cut is re-executed for real.
    fn do_rollback(
        &mut self,
        at: SimTime,
        gap: SimDur,
        shrink: bool,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let np = self.meta.np;
        let cut = self
            .cut
            .ok_or_else(|| SimError::Internal("rollback without a verified cut".into()))?;
        let max_clock = self
            .ranks
            .iter()
            .map(|s| s.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        let resume = (at + gap).max(max_clock);
        // Fatal faults covered by the recovery window are absorbed by it.
        if let Some(a) = self.faults.as_mut() {
            while let Some(&ft) = a.sched.fatals().get(a.next_fatal) {
                if ft <= resume {
                    a.next_fatal += 1;
                } else {
                    break;
                }
            }
        }
        self.eager.clear();
        self.irecvs.clear();
        self.exchanges.clear();
        self.colls.clear();
        self.ckpts.clear();
        self.verifies.clear();
        for nic in &mut self.nics {
            *nic = SerialResource::new();
        }
        self.done = 0;
        self.ckpt_done = cut.ckpt_done;
        self.ckpt_bytes = cut.ckpt_bytes;
        for r in 0..np {
            let st = &mut self.ranks[r];
            let died_at = st.clock;
            sink.on_event(
                r,
                ProfEvent::Restart {
                    start: died_at,
                    end: resume,
                },
            );
            if shrink {
                sink.on_event(
                    r,
                    ProfEvent::Shrink {
                        start: died_at,
                        end: resume,
                    },
                );
            }
            st.fault += resume.since(died_at);
            st.clock = resume;
            st.requests.clear();
            st.coll_count.clear();
            st.io_until = SimTime::ZERO;
            // Replay from the start, discarding everything up to the
            // verified cut at zero cost. Checkpoint ids are re-counted as
            // the skip walks past them; verify ids resume from the cut.
            self.skip[r] = 0;
            self.skip_verify[r] = cut.verify_done;
            self.verify_count[r] = cut.verify_done;
            self.ckpt_count[r] = 0;
            self.sources[r].rewind();
            self.make_ready(r);
        }
        Ok(())
    }

    /// Adjudicate silent corruptions up to `upto` against the detection
    /// threshold at a verification or checkpoint cut. Returns whether any
    /// corruption was detected (the caller's state is dirty and must
    /// recover). The consumption pointer never rewinds, so a corruption is
    /// adjudicated exactly once.
    fn consume_sdc_at_cut(&mut self, upto: SimTime, sink: &mut dyn ProfSink) -> bool {
        let (events, threshold) = {
            let Some(a) = self.faults.as_mut() else {
                return false;
            };
            let mut v: Vec<SdcEvent> = Vec::new();
            while let Some(&e) = a.sched.sdc().get(a.next_sdc) {
                if e.t > upto {
                    break;
                }
                a.next_sdc += 1;
                v.push(e);
            }
            (v, a.sdc_threshold)
        };
        let mut any = false;
        for e in events {
            let detected = e.severity >= threshold;
            let rank = self
                .rates
                .iter()
                .position(|x| x.node == e.node)
                .unwrap_or(0);
            sink.on_event(rank, ProfEvent::Sdc { t: e.t, detected });
            if detected {
                self.sdc_detected += 1;
                any = true;
            } else {
                self.sdc_undetected += 1;
            }
        }
        any
    }

    /// Corruptions the job finished without ever adjudicating escaped
    /// every detector, whatever their severity.
    fn drain_sdc_at_end(&mut self, upto: SimTime, sink: &mut dyn ProfSink) {
        let events = {
            let Some(a) = self.faults.as_mut() else {
                return;
            };
            let mut v: Vec<SdcEvent> = Vec::new();
            while let Some(&e) = a.sched.sdc().get(a.next_sdc) {
                if e.t > upto {
                    break;
                }
                a.next_sdc += 1;
                v.push(e);
            }
            v
        };
        for e in events {
            let rank = self
                .rates
                .iter()
                .position(|x| x.node == e.node)
                .unwrap_or(0);
            sink.on_event(
                rank,
                ProfEvent::Sdc {
                    t: e.t,
                    detected: false,
                },
            );
            self.sdc_undetected += 1;
        }
    }

    /// While the rank's node is inside a crash window, the op it is about
    /// to issue stalls: it fails, backs off per the retry policy, and
    /// re-issues until the node recovers (or the budget runs out). Stall
    /// time is charged to the fault ledger. Loops because the retry that
    /// clears one outage may land inside the next.
    fn stall_on_crash(&mut self, r: usize, sink: &mut dyn ProfSink) -> Result<(), SimError> {
        loop {
            let now = self.ranks[r].clock;
            let node = self.rates[r].node;
            let resume = match &self.faults {
                None => return Ok(()),
                Some(a) => match a.sched.crash_end(node, now) {
                    None => return Ok(()),
                    Some(recovery) => a.retry.first_success(now, recovery).ok_or_else(|| {
                        SimError::RetryExhausted(format!(
                            "rank {r}: node {node} down at {now}, recovery at {recovery} \
                             beyond the retry budget"
                        ))
                    })?,
                },
            };
            let st = &mut self.ranks[r];
            sink.on_event(
                r,
                ProfEvent::Fault {
                    start: now,
                    end: resume,
                },
            );
            st.fault += resume.since(now);
            st.clock = resume;
        }
    }

    /// Map a peer rank id to a checked index.
    fn check_rank(&self, r: usize, peer: Rank) -> Result<usize, SimError> {
        let p = peer as usize;
        if p >= self.meta.np {
            return Err(SimError::Malformed(format!(
                "rank {r}: peer rank {peer} out of range for np {}",
                self.meta.np
            )));
        }
        Ok(p)
    }

    /// Build the blocked-ranks diagnostic for a [`SimError::Deadlock`].
    /// Cold and never inlined: the happy path must not pay for the string
    /// formatting machinery this drags in.
    #[cold]
    #[inline(never)]
    fn deadlock_report(&self) -> String {
        let mut blocked: Vec<String> = Vec::new();
        for (r, st) in self.ranks.iter().enumerate() {
            if st.status != Status::Done {
                blocked.push(format!(
                    "rank {r} after op {} in {:?}",
                    st.issued, st.status
                ));
                if blocked.len() >= 4 {
                    break;
                }
            }
        }
        blocked.join("; ")
    }

    /// Mark a rank ready at its (possibly new) clock. If it is the rank
    /// the run loop is currently stepping (and the run is fault-free), the
    /// heap push is deferred: the loop re-steps it inline unless another
    /// rank could legally run first.
    fn make_ready(&mut self, r: usize) {
        let st = &mut self.ranks[r];
        st.status = Status::Ready;
        st.gen += 1;
        if self.defer_ok && r == self.cur {
            self.cur_ready = true;
        } else {
            self.ready.push(st.clock, (r, st.gen));
        }
    }

    /// Mark a rank ready and always push it onto the heap, even when it is
    /// the currently stepped rank. Used where a peer becomes ready at the
    /// *same instant* as the stepped rank (send completion, exchange
    /// completion): both must go through the heap so the (time, seq) FIFO
    /// order between them matches the unoptimized engine exactly.
    fn push_ready(&mut self, r: usize) {
        let st = &mut self.ranks[r];
        st.status = Status::Ready;
        st.gen += 1;
        self.ready.push(st.clock, (r, st.gen));
        if r == self.cur {
            self.cur_ready = false;
        }
    }

    fn step(&mut self, r: usize, sink: &mut dyn ProfSink) -> Result<(), SimError> {
        // Recovery fast-forward: after a restart (or rollback), ops before
        // the last completed checkpoint (or verified cut) replay at zero
        // cost — the restored state already contains their effects. Section
        // markers still fire — at the relaunch instant, zero-width — so the
        // profiler's open-section stack is rebuilt to exactly what it was
        // at the cut. At most one of the two skip counters is nonzero; the
        // *other* cut kind's ops are counted (not skipped) so sequence ids
        // stay aligned across ranks when they resume for real.
        while self.skip[r] > 0 || self.skip_verify[r] > 0 {
            match self.sources[r].next_op() {
                Some(Op::Checkpoint { .. }) => {
                    if self.skip[r] > 0 {
                        self.skip[r] -= 1;
                    } else {
                        self.ckpt_count[r] += 1;
                    }
                }
                Some(Op::Verify { .. }) => {
                    if self.skip_verify[r] > 0 {
                        self.skip_verify[r] -= 1;
                    } else {
                        self.verify_count[r] += 1;
                    }
                }
                Some(Op::SectionEnter(id)) => self.do_section(r, id, true, sink),
                Some(Op::SectionExit(id)) => self.do_section(r, id, false, sink),
                Some(_) => {}
                None => {
                    // Program ended while skipping: a cut count drift can
                    // only come from a malformed program.
                    self.skip[r] = 0;
                    self.skip_verify[r] = 0;
                    self.ranks[r].status = Status::Done;
                    self.done += 1;
                    return Ok(());
                }
            }
        }
        // A rank on a crashed node stalls (with retries) before it can
        // issue anything.
        if self.faults.is_some() {
            self.stall_on_crash(r, sink)?;
        }
        // Pull the next op on demand. A blocked rank is completed by its
        // peer's progress (never by re-reading the op), so the cursor can
        // advance as soon as the op is issued.
        let Some(op) = self.sources[r].next_op() else {
            self.ranks[r].status = Status::Done;
            self.done += 1;
            return Ok(());
        };
        self.ops_executed += 1;
        self.ranks[r].issued += 1;
        match op {
            Op::Compute { flops, bytes } => self.do_compute(r, flops, bytes, sink),
            Op::Send { to, bytes, tag } => {
                let d = self.check_rank(r, to)?;
                self.do_send(r, d, bytes, tag, sink);
            }
            Op::Recv { from, bytes, tag } => {
                let s = self.check_rank(r, from)?;
                self.do_recv(r, s, bytes, tag, sink);
            }
            Op::Isend {
                to,
                bytes,
                tag,
                req,
            } => {
                let d = self.check_rank(r, to)?;
                self.do_isend(r, d, bytes, tag, req, sink)?;
            }
            Op::Irecv {
                from,
                bytes,
                tag,
                req,
            } => {
                let s = self.check_rank(r, from)?;
                self.do_irecv(r, s, bytes, tag, req)?;
            }
            Op::Wait { req } => self.do_wait(r, req, sink)?,
            Op::Exchange {
                partner,
                send_bytes,
                recv_bytes,
                tag,
            } => {
                let p = self.check_rank(r, partner)?;
                self.do_exchange(r, p, send_bytes, recv_bytes, tag, sink)?;
            }
            Op::Coll(c) => self.do_coll(r, Group::World, c, sink)?,
            Op::GroupColl { group, op } => self.do_coll(r, group, op, sink)?,
            Op::FileRead { bytes } => self.do_io(r, IoKind::Read, bytes, sink),
            Op::FileWrite { bytes } => self.do_io(r, IoKind::Write, bytes, sink),
            Op::Checkpoint { bytes } => self.do_checkpoint(r, bytes, sink)?,
            Op::Verify { flops, state_bytes } => self.do_verify(r, flops, state_bytes, sink)?,
            Op::SectionEnter(id) => self.do_section(r, id, true, sink),
            Op::SectionExit(id) => self.do_section(r, id, false, sink),
        }
        Ok(())
    }

    /// One compute chunk's duration on the fault-free path: the rate model
    /// plus a per-op jitter draw. The faulted path multiplies by a steal
    /// factor that is exactly 1.0 when no storm is active, and
    /// `(base + jitter) * 1.0` is bitwise `base + jitter`, so skipping the
    /// multiply here is an exact identity.
    fn compute_dur(&mut self, r: usize, flops: f64, bytes: f64) -> SimDur {
        let base = self.rates[r].compute_time(flops, bytes);
        let jp = self.rates[r].jitter;
        SimDur::from_secs_f64(base + jp.sample(&mut self.ranks[r].rng))
    }

    fn do_compute(&mut self, r: usize, flops: f64, bytes: f64, sink: &mut dyn ProfSink) {
        let start = self.ranks[r].clock;
        if self.faults.is_none() {
            // Fused path: charge a run of consecutive compute ops as one
            // clock advance and one profile event. Jitter draws happen per
            // op in program order and per-op durations are computed exactly
            // as the one-op path would, so the integer-tick sum — and with
            // it every downstream clock — is bit-identical; only the event
            // granularity coarsens (IPM sums the same total either way).
            let mut total = self.compute_dur(r, flops, bytes);
            while let Some(&Op::Compute { flops, bytes }) = self.sources[r].peek_op() {
                self.sources[r].next_op();
                self.ops_executed += 1;
                self.ranks[r].issued += 1;
                total += self.compute_dur(r, flops, bytes);
            }
            let st = &mut self.ranks[r];
            st.clock += total;
            st.comp += total;
            if self.prof_on {
                sink.on_event(
                    r,
                    ProfEvent::Compute {
                        start,
                        end: st.clock,
                    },
                );
            }
            self.make_ready(r);
            return;
        }
        let base = self.rates[r].compute_time(flops, bytes);
        let jitter = {
            let jp = self.rates[r].jitter;
            jp.sample(&mut self.ranks[r].rng)
        };
        // Steal storm: the hypervisor is running someone else's cycles, so
        // the whole chunk (noise included) runs slower. Factor 1.0 when no
        // storm covers this node at `start` — an exact identity.
        let steal = match &self.faults {
            Some(a) => a.sched.compute_factor(self.rates[r].node, start),
            None => 1.0,
        };
        let dur = SimDur::from_secs_f64((base + jitter) * steal);
        let st = &mut self.ranks[r];
        st.clock += dur;
        st.comp += dur;
        if self.prof_on {
            sink.on_event(
                r,
                ProfEvent::Compute {
                    start,
                    end: st.clock,
                },
            );
        }
        self.make_ready(r);
    }

    fn do_section(&mut self, r: usize, id: SectionId, enter: bool, sink: &mut dyn ProfSink) {
        let t = self.ranks[r].clock;
        if self.prof_on {
            sink.on_event(
                r,
                if enter {
                    ProfEvent::SectionEnter { id, t }
                } else {
                    ProfEvent::SectionExit { id, t }
                },
            );
        }
        self.make_ready(r);
    }

    fn do_io(&mut self, r: usize, kind: IoKind, bytes: u64, sink: &mut dyn ProfSink) {
        let start = self.ranks[r].clock;
        // Concurrency: ranks whose last I/O interval is still open at `start`
        // are sharing the filesystem servers with us.
        let concurrent = 1 + self
            .ranks
            .iter()
            .enumerate()
            .filter(|(i, st)| *i != r && st.io_until > start)
            .count();
        let secs = match kind {
            IoKind::Read => self.cluster.fs.read_time(bytes, concurrent),
            IoKind::Write => self.cluster.fs.write_time(bytes, concurrent),
        };
        // NFS brownout: the shared server is overloaded cluster-wide.
        let brownout = match &self.faults {
            Some(a) => a.sched.io_factor(start),
            None => 1.0,
        };
        let dur = SimDur::from_secs_f64(secs * brownout);
        let st = &mut self.ranks[r];
        st.clock += dur;
        st.io += dur;
        st.io_until = st.clock;
        if self.prof_on {
            sink.on_event(
                r,
                ProfEvent::Io {
                    kind,
                    bytes,
                    start,
                    end: st.clock,
                },
            );
        }
        self.make_ready(r);
    }

    fn do_send(&mut self, s: usize, d: usize, bytes: usize, tag: Tag, sink: &mut dyn ProfSink) {
        let route = self
            .cluster
            .topology
            .route(self.rates[s].node, self.rates[d].node);
        let start = self.ranks[s].clock;
        // NIC degradation on either endpoint inflates every LogGP term.
        let degraded_store;
        let fabric = {
            let ff = self.net_fault_factor(self.rates[s].node, self.rates[d].node, start);
            if ff > 1.0 {
                degraded_store = route.fabric.degraded(ff);
                &degraded_store
            } else {
                route.fabric
            }
        };
        // All sends are non-blocking: the sender pays its CPU occupancy and
        // proceeds while the NIC drains the payload. Payloads over the eager
        // threshold pay the rendezvous handshake as extra delivery latency —
        // real MPI overlaps rendezvous transfers the same way once receive
        // buffers are pre-posted, which every workload in the study does.
        let occ = SimDur::from_secs_f64(cost::send_occupancy(fabric, bytes) * self.cpu_factor[s]);
        let depart = start + occ;
        let wire_end = if route.inter_node {
            let wire = SimDur::from_secs_f64(cost::wire_time(fabric, bytes));
            let (_, end) = self.nics[self.rates[s].node].acquire(depart, wire);
            end
        } else {
            depart + SimDur::from_secs_f64(cost::wire_time(fabric, bytes))
        };
        let rndv_extra = if bytes > fabric.eager_threshold {
            fabric.rendezvous_overhead
        } else {
            0.0
        };
        let jitter = fabric.jitter.sample(&mut self.ranks[s].rng);
        let arrival = wire_end
            + SimDur::from_secs_f64(fabric.latency + route.extra_latency + rndv_extra + jitter);
        let recv_occ = cost::recv_occupancy(fabric, bytes) * self.cpu_factor[d];
        let st = &mut self.ranks[s];
        st.clock = depart;
        st.comm += occ;
        if self.prof_on {
            sink.on_event(
                s,
                ProfEvent::Mpi {
                    kind: MpiKind::Send,
                    bytes: bytes as u64,
                    start,
                    end: depart,
                },
            );
        }
        // Through the heap, not deferred: deliver() below may ready the
        // receiver at the same instant, and the sender must keep the lower
        // heap sequence number exactly as in the undeferred engine.
        self.push_ready(s);
        self.deliver(
            s as Rank,
            d as Rank,
            tag,
            EagerMsg {
                arrival,
                bytes,
                recv_occ,
            },
            sink,
        );
    }

    fn deliver(&mut self, s: Rank, d: Rank, tag: Tag, msg: EagerMsg, sink: &mut dyn ProfSink) {
        let dr = d as usize;
        // Pre-posted non-blocking receives match first (they were posted
        // before the receiver could have blocked on the same channel).
        if let Some(q) = self.irecvs.get_mut(dr, s, tag) {
            if let Some((rank, req, posted)) = q.pop_front() {
                debug_assert_eq!(rank, dr);
                let complete_at = posted.max(msg.arrival) + SimDur::from_secs_f64(msg.recv_occ);
                self.fulfil_request(
                    rank,
                    req,
                    complete_at,
                    msg.bytes as u64,
                    MpiKind::Recv,
                    sink,
                );
                return;
            }
        }
        if let Status::BlockedRecv {
            from,
            tag: rtag,
            posted,
            ..
        } = self.ranks[dr].status
        {
            if from == s && rtag == tag {
                // Channel FIFO: the blocked recv must take the oldest queued
                // message; only complete directly if the queue is empty.
                if self.eager.is_empty_channel(dr, s, tag) {
                    self.complete_recv(dr, posted, msg, sink);
                    return;
                }
            }
        }
        self.eager.queue_mut(dr, s, tag).push_back(msg);
    }

    fn complete_recv(&mut self, d: usize, posted: SimTime, msg: EagerMsg, sink: &mut dyn ProfSink) {
        let occ = msg.recv_occ;
        let end = posted.max(msg.arrival) + SimDur::from_secs_f64(occ);
        let st = &mut self.ranks[d];
        let wait = end.since(posted);
        st.clock = end;
        st.comm += wait;
        if self.prof_on {
            sink.on_event(
                d,
                ProfEvent::Mpi {
                    kind: MpiKind::Recv,
                    bytes: msg.bytes as u64,
                    start: posted,
                    end,
                },
            );
        }
        self.make_ready(d);
    }

    fn do_recv(&mut self, d: usize, s: usize, bytes: usize, tag: Tag, sink: &mut dyn ProfSink) {
        let posted = self.ranks[d].clock;
        if let Some(q) = self.eager.get_mut(d, s as Rank, tag) {
            if let Some(msg) = q.pop_front() {
                self.complete_recv(d, posted, msg, sink);
                return;
            }
        }
        self.ranks[d].status = Status::BlockedRecv {
            from: s as Rank,
            tag,
            bytes,
            posted,
        };
    }

    fn do_isend(
        &mut self,
        s: usize,
        d: usize,
        bytes: usize,
        tag: Tag,
        req: ReqId,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        // Wire behaviour is identical to a blocking send (sends are already
        // asynchronous); the request completes as soon as the sender's
        // buffer is reusable, i.e. immediately after the CPU occupancy.
        self.do_send(s, d, bytes, tag, sink);
        let complete_at = self.ranks[s].clock;
        let prev = self.ranks[s].requests.insert(
            req,
            ReqState::Done {
                complete_at,
                bytes: bytes as u64,
                kind: MpiKind::Send,
            },
        );
        if prev.is_some() {
            return Err(SimError::Malformed(format!(
                "rank {s}: request {req} reused before wait"
            )));
        }
        Ok(())
    }

    fn do_irecv(
        &mut self,
        d: usize,
        s: usize,
        _bytes: usize,
        tag: Tag,
        req: ReqId,
    ) -> Result<(), SimError> {
        let posted = self.ranks[d].clock;
        // A message may already be buffered.
        let prev = if let Some(msg) = self
            .eager
            .get_mut(d, s as Rank, tag)
            .and_then(|q| q.pop_front())
        {
            let complete_at = posted.max(msg.arrival) + SimDur::from_secs_f64(msg.recv_occ);
            self.ranks[d].requests.insert(
                req,
                ReqState::Done {
                    complete_at,
                    bytes: msg.bytes as u64,
                    kind: MpiKind::Recv,
                },
            )
        } else {
            self.irecvs
                .queue_mut(d, s as Rank, tag)
                .push_back((d, req, posted));
            self.ranks[d].requests.insert(req, ReqState::RecvPending)
        };
        if prev.is_some() {
            return Err(SimError::Malformed(format!(
                "rank {d}: request {req} reused before wait"
            )));
        }
        self.make_ready(d);
        Ok(())
    }

    /// Mark a pending request complete; if its owner is blocked waiting on
    /// it, finish the wait.
    fn fulfil_request(
        &mut self,
        rank: usize,
        req: ReqId,
        complete_at: SimTime,
        bytes: u64,
        kind: MpiKind,
        sink: &mut dyn ProfSink,
    ) {
        if let Status::BlockedWait {
            req: waiting,
            posted,
        } = self.ranks[rank].status
        {
            if waiting == req {
                self.ranks[rank].requests.remove(&req);
                let end = posted.max(complete_at);
                let st = &mut self.ranks[rank];
                st.clock = end;
                st.comm += end.since(posted);
                if self.prof_on {
                    sink.on_event(
                        rank,
                        ProfEvent::Mpi {
                            kind,
                            bytes,
                            start: posted,
                            end,
                        },
                    );
                }
                self.make_ready(rank);
                return;
            }
        }
        self.ranks[rank].requests.insert(
            req,
            ReqState::Done {
                complete_at,
                bytes,
                kind,
            },
        );
    }

    fn do_wait(&mut self, r: usize, req: ReqId, sink: &mut dyn ProfSink) -> Result<(), SimError> {
        let now = self.ranks[r].clock;
        match self.ranks[r].requests.get(&req) {
            Some(ReqState::Done {
                complete_at,
                bytes,
                kind,
            }) => {
                let (complete_at, bytes, kind) = (*complete_at, *bytes, *kind);
                self.ranks[r].requests.remove(&req);
                let end = now.max(complete_at);
                let st = &mut self.ranks[r];
                st.clock = end;
                st.comm += end.since(now);
                if self.prof_on {
                    sink.on_event(
                        r,
                        ProfEvent::Mpi {
                            kind,
                            bytes,
                            start: now,
                            end,
                        },
                    );
                }
                self.make_ready(r);
            }
            Some(ReqState::RecvPending) => {
                self.ranks[r].status = Status::BlockedWait { req, posted: now };
            }
            None => {
                return Err(SimError::Malformed(format!(
                    "rank {r}: wait on unknown request {req}"
                )))
            }
        }
        Ok(())
    }

    fn do_exchange(
        &mut self,
        r: usize,
        partner: usize,
        send_bytes: usize,
        recv_bytes: usize,
        tag: Tag,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let entry = self.ranks[r].clock;
        let lo = (r.min(partner)) as Rank;
        let hi = (r.max(partner)) as Rank;
        if let Some(other) = self
            .exchanges
            .get_mut(lo as usize, hi, tag)
            .and_then(|q| q.pop_front())
        {
            // Both halves present: complete the exchange.
            let o = other.rank as usize;
            if o != partner {
                return Err(SimError::Malformed(format!(
                    "rank {r}: exchange tag {tag} paired with rank {o}, expected {partner}"
                )));
            }
            let route = self
                .cluster
                .topology
                .route(self.rates[r].node, self.rates[o].node);
            let start = entry.max(other.entry);
            let degraded_store;
            let fabric = {
                let ff = self.net_fault_factor(self.rates[r].node, self.rates[o].node, start);
                if ff > 1.0 {
                    degraded_store = route.fabric.degraded(ff);
                    &degraded_store
                } else {
                    route.fabric
                }
            };
            let occ_r = cost::send_occupancy(fabric, send_bytes) * self.cpu_factor[r];
            let occ_o = cost::send_occupancy(fabric, other.send_bytes) * self.cpu_factor[o];
            let (end_r_wire, end_o_wire) = if route.inter_node {
                let wr = SimDur::from_secs_f64(cost::wire_time(fabric, send_bytes));
                let wo = SimDur::from_secs_f64(cost::wire_time(fabric, other.send_bytes));
                let (_, er) =
                    self.nics[self.rates[r].node].acquire(start + SimDur::from_secs_f64(occ_r), wr);
                let (_, eo) =
                    self.nics[self.rates[o].node].acquire(start + SimDur::from_secs_f64(occ_o), wo);
                (er, eo)
            } else {
                (
                    start + SimDur::from_secs_f64(occ_r + cost::wire_time(fabric, send_bytes)),
                    start
                        + SimDur::from_secs_f64(occ_o + cost::wire_time(fabric, other.send_bytes)),
                )
            };
            let jitter = fabric.jitter.sample(&mut self.ranks[lo as usize].rng);
            let rndv = if send_bytes.max(other.send_bytes) > fabric.eager_threshold {
                fabric.rendezvous_overhead
            } else {
                0.0
            };
            let tail = SimDur::from_secs_f64(
                fabric.latency
                    + route.extra_latency
                    + jitter
                    + rndv
                    + cost::recv_occupancy(fabric, recv_bytes.max(other.send_bytes))
                        * self.cpu_factor[r].max(self.cpu_factor[o]),
            );
            let end = end_r_wire.max(end_o_wire) + tail;
            for (who, t_entry, b) in [
                (r, entry, send_bytes as u64),
                (o, other.entry, other.send_bytes as u64),
            ] {
                let st = &mut self.ranks[who];
                st.clock = end;
                st.comm += end.since(t_entry);
                if self.prof_on {
                    sink.on_event(
                        who,
                        ProfEvent::Mpi {
                            kind: MpiKind::Sendrecv,
                            bytes: b,
                            start: t_entry,
                            end,
                        },
                    );
                }
                // Both endpoints land at the same instant `end`; push both
                // through the heap so their FIFO order stays the
                // unoptimized engine's (stepped rank first, partner next).
                self.push_ready(who);
            }
        } else {
            self.exchanges
                .queue_mut(lo as usize, hi, tag)
                .push_back(ExchangeArrival {
                    rank: r as Rank,
                    entry,
                    send_bytes,
                });
            self.ranks[r].status = Status::BlockedExchange { posted: entry };
        }
        Ok(())
    }

    /// Memoized layout of `group`'s members. Placement never changes during
    /// a run, so each communicator's layout is computed at most once.
    fn layout_for(&mut self, group: Group) -> GroupLayout {
        if matches!(group, Group::World) {
            return self.world_layout;
        }
        if let Some((_, l)) = self.group_layouts.iter().find(|(g, _)| *g == group) {
            return *l;
        }
        let l = group_layout(
            group,
            self.meta.np,
            self.placement.ranks_per_node.len(),
            &self.rates,
            &self.cpu_factor,
        );
        self.group_layouts.push((group, l));
        l
    }

    fn do_coll(
        &mut self,
        r: usize,
        group: Group,
        op: CollOp,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let np = self.meta.np;
        let members = group.size(np);
        if let Group::Strided {
            first,
            count,
            stride,
        } = group
        {
            let last = first as u64 + (count.saturating_sub(1) as u64) * stride.max(1) as u64;
            if last >= np as u64 {
                return Err(SimError::Malformed(format!(
                    "rank {r}: group collective extends past rank {last} >= np {np}"
                )));
            }
        }
        if members <= 1 {
            // Degenerate single-rank collective: free.
            self.make_ready(r);
            return Ok(());
        }
        let entry = self.ranks[r].clock;
        let seq = self.ranks[r].next_coll_seq(group);
        let state = self.colls.entry((group, seq)).or_insert_with(|| CollState {
            op,
            arrived: Vec::with_capacity(members),
        });
        if state.op != op {
            return Err(SimError::Malformed(format!(
                "rank {r}: collective sequence mismatch at #{seq}: issued {:?}, peers issued {:?}",
                op, state.op
            )));
        }
        state.arrived.push((r as Rank, entry));
        if state.arrived.len() < members {
            self.ranks[r].status = Status::BlockedColl { posted: entry };
            return Ok(());
        }
        // Last arrival: cost the collective and release everybody.
        let state = self
            .colls
            .remove(&(group, seq))
            .ok_or_else(|| SimError::Internal(format!("collective state missing at #{seq}")))?;
        let max_entry = state.arrived.iter().map(|(_, t)| *t).max().unwrap_or(entry);
        // Layout of the group's members (NIC sharers and node span),
        // memoized: placement is static, so it never changes between
        // collectives on the same communicator.
        let layout = self.layout_for(group);
        let topo = CollTopo {
            inter: &self.cluster.topology.inter,
            intra: &self.cluster.topology.intra,
            np: members,
            ppn: layout.ppn,
            nodes_used: layout.nodes_used,
            cpu_factor: layout.cpu_factor,
        };
        let mut secs = topo.cost(op);
        for _ in 0..topo.inter_rounds(op) {
            secs += self
                .cluster
                .topology
                .inter
                .jitter
                .sample(&mut self.coll_rng);
        }
        // A degraded NIC on any member's node drags the whole collective:
        // every algorithm round funnels through the slowest endpoint.
        if self.faults.is_some() {
            let mut ff = 1.0f64;
            for m in group.members(np) {
                let node = self.rates[m as usize].node;
                ff = ff.max(self.net_fault_factor(node, node, max_entry));
            }
            secs *= ff;
        }
        let end = max_entry + SimDur::from_secs_f64(secs);
        let kind = match op {
            CollOp::Barrier => MpiKind::Barrier,
            CollOp::Bcast { .. } => MpiKind::Bcast,
            CollOp::Reduce { .. } => MpiKind::Reduce,
            CollOp::Allreduce { .. } => MpiKind::Allreduce,
            CollOp::Allgather { .. } => MpiKind::Allgather,
            CollOp::Alltoall { .. } => MpiKind::Alltoall,
            CollOp::Gather { .. } => MpiKind::Gather,
            CollOp::Scatter { .. } => MpiKind::Scatter,
        };
        let bytes = op.bytes_per_rank(members);
        for (who, t_entry) in state.arrived {
            let w = who as usize;
            let st = &mut self.ranks[w];
            st.clock = end;
            st.comm += end.since(t_entry);
            if self.prof_on {
                sink.on_event(
                    w,
                    ProfEvent::Mpi {
                        kind,
                        bytes,
                        start: t_entry,
                        end,
                    },
                );
            }
            self.make_ready(w);
        }
        Ok(())
    }

    /// Coordinated checkpoint: a world barrier, then every rank writes
    /// `bytes` to the shared filesystem concurrently. The full span (sync +
    /// write) is charged as I/O — that is what a real profiler would see.
    /// The checkpoint only becomes the restart point once it completes
    /// before the next fatal fault.
    fn do_checkpoint(
        &mut self,
        r: usize,
        bytes: u64,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let np = self.meta.np;
        let entry = self.ranks[r].clock;
        let seq = self.ckpt_count[r];
        self.ckpt_count[r] += 1;
        if np > 1 && self.ckpts.arrive(seq, r as Rank, entry) < np {
            self.ranks[r].status = Status::BlockedColl { posted: entry };
            return Ok(());
        }
        let arrived = if np > 1 {
            self.ckpts
                .take(seq)
                .ok_or_else(|| SimError::Internal(format!("checkpoint state missing at #{seq}")))?
        } else {
            vec![(r as Rank, entry)]
        };
        let max_entry = arrived.iter().map(|(_, t)| *t).max().unwrap_or(entry);
        let sync_secs = if np > 1 {
            let layout = self.world_layout;
            let topo = CollTopo {
                inter: &self.cluster.topology.inter,
                intra: &self.cluster.topology.intra,
                np,
                ppn: layout.ppn,
                nodes_used: layout.nodes_used,
                cpu_factor: layout.cpu_factor,
            };
            topo.cost(CollOp::Barrier)
        } else {
            0.0
        };
        // All np ranks write at once; brownouts apply like any other I/O.
        let mut write_secs = self.cluster.fs.write_time(bytes, np);
        if let Some(a) = &self.faults {
            write_secs *= a.sched.io_factor(max_entry);
        }
        let end = max_entry + SimDur::from_secs_f64(sync_secs + write_secs);
        for (who, t_entry) in arrived {
            let w = who as usize;
            let st = &mut self.ranks[w];
            st.clock = end;
            st.io += end.since(t_entry);
            st.io_until = end;
            sink.on_event(
                w,
                ProfEvent::Io {
                    kind: IoKind::Write,
                    bytes,
                    start: t_entry,
                    end,
                },
            );
            self.make_ready(w);
        }
        // Count the checkpoint only if it lands before the next fatal —
        // one completing "during" the crash is torn and unusable.
        let usable = self.next_fatal().is_none_or(|f| end <= f);
        if usable {
            // The write includes a cheap integrity pass: a detectable
            // corruption up to this cut poisons the checkpoint (it would
            // persist the bad state) and triggers recovery instead.
            if self.consume_sdc_at_cut(end, sink) {
                return self.recover(end, bytes, sink);
            }
            self.ckpt_done += 1;
            self.ckpt_bytes = bytes;
        }
        Ok(())
    }

    /// ABFT verification cut: a world barrier, then every rank runs the
    /// checksum pass (`flops`) over its state; the cut completes at the
    /// slowest rank's agreement. The barrier span is charged as
    /// communication and the checksum pass as compute, so the conservation
    /// `wall == comp + comm + io + fault` holds; a `Verify` overlay event
    /// carries the full span for the profiler. Silent corruptions up to
    /// the cut are adjudicated here: a detected one triggers recovery, a
    /// clean pass records the cut as the new rollback target.
    fn do_verify(
        &mut self,
        r: usize,
        flops: f64,
        state_bytes: u64,
        sink: &mut dyn ProfSink,
    ) -> Result<(), SimError> {
        let np = self.meta.np;
        let entry = self.ranks[r].clock;
        let seq = self.verify_count[r];
        self.verify_count[r] += 1;
        if np > 1 && self.verifies.arrive(seq, r as Rank, entry) < np {
            self.ranks[r].status = Status::BlockedColl { posted: entry };
            return Ok(());
        }
        let arrived = if np > 1 {
            self.verifies
                .take(seq)
                .ok_or_else(|| SimError::Internal(format!("verify state missing at #{seq}")))?
        } else {
            vec![(r as Rank, entry)]
        };
        let max_entry = arrived.iter().map(|(_, t)| *t).max().unwrap_or(entry);
        let sync_secs = if np > 1 {
            let layout = self.world_layout;
            let topo = CollTopo {
                inter: &self.cluster.topology.inter,
                intra: &self.cluster.topology.intra,
                np,
                ppn: layout.ppn,
                nodes_used: layout.nodes_used,
                cpu_factor: layout.cpu_factor,
            };
            topo.cost(CollOp::Barrier)
        } else {
            0.0
        };
        // The slowest rank's checksum pass paces the cut, and a steal
        // storm on any node slows it like any other compute.
        let mut check_secs = 0.0_f64;
        for m in 0..np {
            let mut c = self.rates[m].compute_time(flops, 0.0);
            if let Some(a) = &self.faults {
                c *= a.sched.compute_factor(self.rates[m].node, max_entry);
            }
            check_secs = check_secs.max(c);
        }
        let sync_end = max_entry + SimDur::from_secs_f64(sync_secs);
        let end = sync_end + SimDur::from_secs_f64(check_secs);
        for (who, t_entry) in arrived {
            let w = who as usize;
            let st = &mut self.ranks[w];
            st.clock = end;
            st.comm += sync_end.since(t_entry);
            st.comp += end.since(sync_end);
            sink.on_event(
                w,
                ProfEvent::Mpi {
                    kind: MpiKind::Barrier,
                    bytes: 0,
                    start: t_entry,
                    end: sync_end,
                },
            );
            sink.on_event(
                w,
                ProfEvent::Compute {
                    start: sync_end,
                    end,
                },
            );
            sink.on_event(
                w,
                ProfEvent::Verify {
                    start: t_entry,
                    end,
                },
            );
            self.make_ready(w);
        }
        // Like checkpoints, a cut completing "during" a fatal is void.
        let live = self.next_fatal().is_none_or(|f| end <= f);
        if live {
            if self.consume_sdc_at_cut(end, sink) {
                return self.recover(end, state_bytes, sink);
            }
            self.cut = Some(CutState {
                verify_done: seq + 1,
                ckpt_done: self.ckpt_done,
                ckpt_bytes: self.ckpt_bytes,
                state_bytes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod engine_tests {
    //! White-box tests of engine mechanics not reachable from the public
    //! workload suites.

    use super::*;
    use crate::op::{CollOp, JobSpec, Op};
    use crate::prof::NullSink;
    use sim_platform::presets;

    fn job(programs: Vec<Vec<Op>>) -> JobSpec {
        JobSpec::from_programs("t", programs, vec![])
    }

    #[test]
    fn concurrent_reads_share_the_nfs_server() {
        // Two DCC ranks read 1 GB "at the same time": the shared NFS server
        // serves them at half rate each, so both take ~2x the solo time.
        let d = presets::dcc();
        let solo = run_job(
            &mut job(vec![vec![Op::FileRead { bytes: 1 << 30 }]]),
            &d,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        let both = run_job(
            &mut job(vec![
                vec![Op::FileRead { bytes: 1 << 30 }],
                vec![Op::FileRead { bytes: 1 << 30 }],
            ]),
            &d,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        assert!(
            (1.8..2.2).contains(&(both / solo)),
            "solo {solo} both {both}"
        );
    }

    #[test]
    fn background_none_and_unit_factor_are_bit_identical() {
        // A `background` of `None` and one whose multiplier is exactly 1
        // must both take the borrowed-cluster path: solo runs stay
        // bit-identical to pre-multi-tenancy builds.
        let d = presets::dcc();
        let mk = || {
            let mut progs = vec![vec![]; 16];
            for r in 0..16u32 {
                progs[r as usize] = vec![
                    Op::Compute {
                        flops: 1e7,
                        bytes: 1e6,
                    },
                    Op::Exchange {
                        partner: r ^ 8,
                        send_bytes: 1 << 18,
                        recv_bytes: 1 << 18,
                        tag: 0,
                    },
                    Op::Coll(CollOp::Allreduce { bytes: 4096 }),
                ];
            }
            job(progs)
        };
        let plain = run_job(&mut mk(), &d, &SimConfig::default(), &mut NullSink).unwrap();
        let zero_bg = SimConfig {
            background: Some(Background::on_cluster(&d, 0.0)),
            ..SimConfig::default()
        };
        let quiet = run_job(&mut mk(), &d, &zero_bg, &mut NullSink).unwrap();
        assert_eq!(plain.elapsed, quiet.elapsed);
        for (a, b) in plain.ranks.iter().zip(&quiet.ranks) {
            assert_eq!(a.comm, b.comm);
            assert_eq!(a.comp, b.comp);
        }
    }

    #[test]
    fn background_contention_inflates_comm_not_compute() {
        // With co-tenants on the links, inter-node communication slows by
        // the contention multiplier while pure compute is untouched.
        let d = presets::dcc();
        let comm_job = || {
            // Ranks 0..8 on node 0 exchange with 8..16 on node 1.
            let mut progs = vec![vec![]; 16];
            for r in 0..16u32 {
                progs[r as usize] = vec![
                    Op::Exchange {
                        partner: r ^ 8,
                        send_bytes: 1 << 20,
                        recv_bytes: 1 << 20,
                        tag: 0,
                    };
                    8
                ];
            }
            job(progs)
        };
        let compute_job = || {
            job(vec![
                vec![Op::Compute {
                    flops: 1e9,
                    bytes: 1e6,
                }];
                16
            ])
        };
        let bg = Background::on_cluster(&d, 3.0);
        let contended = SimConfig {
            background: Some(bg),
            ..SimConfig::default()
        };
        let solo_comm = run_job(&mut comm_job(), &d, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let shared_comm = run_job(&mut comm_job(), &d, &contended, &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let ratio = shared_comm / solo_comm;
        let factor = bg.factor();
        assert!(factor > 1.3, "DCC beta should bite: {factor}");
        // Comm-bound job: observed inflation tracks the fabric multiplier
        // (wire time dominates; overheads dilute it slightly).
        assert!(
            ratio > 1.0 + 0.6 * (factor - 1.0) && ratio <= factor + 1e-9,
            "ratio {ratio} vs factor {factor}"
        );
        let solo_comp = run_job(&mut compute_job(), &d, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let shared_comp = run_job(&mut compute_job(), &d, &contended, &mut NullSink)
            .unwrap()
            .elapsed_secs();
        assert_eq!(solo_comp, shared_comp, "compute must be unaffected");
    }

    #[test]
    fn lustre_absorbs_concurrent_readers() {
        let v = presets::vayu();
        let solo = run_job(
            &mut job(vec![vec![Op::FileRead { bytes: 1 << 30 }]]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        let both = run_job(
            &mut job(vec![
                vec![Op::FileRead { bytes: 1 << 30 }],
                vec![Op::FileRead { bytes: 1 << 30 }],
            ]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        assert!(
            both / solo < 1.2,
            "striped fs must absorb 2 readers: {both} vs {solo}"
        );
    }

    #[test]
    fn fat_tree_extra_hop_observable() {
        // Vayu leaf radix is 16: ranks on nodes 0 and 15 share a leaf;
        // nodes 0 and 16 cross the spine and pay two extra hops.
        let v = presets::vayu();
        let mk = |peer_node: usize| {
            let np = peer_node * 8 + 1;
            let mut progs = vec![vec![]; np];
            progs[0] = vec![Op::Send {
                to: (np - 1) as u32,
                bytes: 8,
                tag: 0,
            }];
            progs[np - 1] = vec![Op::Recv {
                from: 0,
                bytes: 8,
                tag: 0,
            }];
            job(progs)
        };
        let same_leaf = run_job(&mut mk(15), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let cross_leaf = run_job(&mut mk(16), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let delta = cross_leaf - same_leaf;
        assert!(
            (0.5e-6..0.8e-6).contains(&delta),
            "spine hops should add ~0.6us: {delta}"
        );
    }

    #[test]
    fn single_rank_jobs_run_all_op_kinds() {
        let v = presets::vayu();
        let r = run_job(
            &mut job(vec![vec![
                Op::Compute {
                    flops: 1e6,
                    bytes: 1e6,
                },
                Op::Coll(CollOp::Allreduce { bytes: 8 }),
                Op::Coll(CollOp::Alltoall { bytes_per_pair: 64 }),
                Op::FileRead { bytes: 1000 },
                Op::FileWrite { bytes: 1000 },
            ]]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        // Single-rank collectives are free.
        assert_eq!(r.ranks[0].comm, sim_des::SimDur::ZERO);
        assert!(r.ranks[0].io.as_secs_f64() > 0.0);
    }

    #[test]
    fn zero_byte_messages_cost_only_overheads() {
        let v = presets::vayu();
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![Op::Send {
            to: 8,
            bytes: 0,
            tag: 0,
        }];
        progs[8] = vec![Op::Recv {
            from: 0,
            bytes: 0,
            tag: 0,
        }];
        let r = run_job(&mut job(progs), &v, &SimConfig::default(), &mut NullSink).unwrap();
        let t = r.elapsed_secs();
        assert!(t > 0.0 && t < 10e-6, "zero-byte send took {t}");
    }

    #[test]
    fn malformed_programs_return_typed_errors() {
        let v = presets::vayu();
        let loose = SimConfig {
            validate: false,
            ..Default::default()
        };
        // Empty job.
        assert!(matches!(
            run_job(&mut job(vec![]), &v, &SimConfig::default(), &mut NullSink),
            Err(SimError::Validation(_))
        ));
        // Send to an out-of-range rank.
        let r = run_job(
            &mut job(vec![
                vec![Op::Send {
                    to: 99,
                    bytes: 8,
                    tag: 0,
                }],
                vec![],
            ]),
            &v,
            &loose,
            &mut NullSink,
        );
        assert!(matches!(r, Err(SimError::Malformed(_))), "{r:?}");
        // Wait on a request that was never issued.
        let r = run_job(
            &mut job(vec![vec![Op::Wait { req: 7 }]]),
            &v,
            &loose,
            &mut NullSink,
        );
        assert!(matches!(r, Err(SimError::Malformed(_))), "{r:?}");
        // Mismatched collective sequences across ranks.
        let r = run_job(
            &mut job(vec![
                vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
                vec![Op::Coll(CollOp::Barrier)],
            ]),
            &v,
            &loose,
            &mut NullSink,
        );
        assert!(matches!(r, Err(SimError::Malformed(_))), "{r:?}");
        // Zero-size collectives are legal, not malformed.
        let r = run_job(
            &mut job(vec![
                vec![Op::Coll(CollOp::Allreduce { bytes: 0 })],
                vec![Op::Coll(CollOp::Allreduce { bytes: 0 })],
            ]),
            &v,
            &loose,
            &mut NullSink,
        );
        assert!(r.is_ok(), "{r:?}");
    }

    fn compute_block(chunks: usize, flops: f64) -> Vec<Op> {
        (0..chunks)
            .map(|_| Op::Compute { flops, bytes: 0.0 })
            .collect()
    }

    #[test]
    fn zero_rate_fault_spec_is_bitwise_noop() {
        use sim_faults::{FaultModel, FaultSpec, RetryPolicy};
        let d = presets::dcc();
        let mk = || {
            let mut progs = vec![compute_block(5, 1e8), compute_block(5, 1e8)];
            for p in &mut progs {
                p.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                p.push(Op::Exchange {
                    partner: 0,
                    send_bytes: 4096,
                    recv_bytes: 4096,
                    tag: 3,
                });
            }
            progs[0][6] = Op::Exchange {
                partner: 1,
                send_bytes: 4096,
                recv_bytes: 4096,
                tag: 3,
            };
            job(progs)
        };
        let plain = run_job(&mut mk(), &d, &SimConfig::default(), &mut NullSink).unwrap();
        let zeroed = SimConfig {
            faults: Some(FaultSpec {
                model: FaultModel::dcc().scaled(0.0),
                retry: RetryPolicy::default(),
                restart_delay_secs: 30.0,
                horizon_secs: 3600.0,
                recovery: Default::default(),
                sdc_threshold: 0.01,
            }),
            ..Default::default()
        };
        let gated = run_job(&mut mk(), &d, &zeroed, &mut NullSink).unwrap();
        assert_eq!(plain.elapsed, gated.elapsed);
        assert_eq!(plain.ops_executed, gated.ops_executed);
        assert_eq!(gated.restarts, 0);
        for (a, b) in plain.ranks.iter().zip(&gated.ranks) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn crash_stalls_charge_the_fault_ledger() {
        use sim_faults::{FaultModel, FaultSpec, RetryPolicy};
        let v = presets::vayu();
        let mk = || job(vec![compute_block(100, 1e9)]);
        let t0 = run_job(&mut mk(), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let cfg = SimConfig {
            faults: Some(FaultSpec {
                model: FaultModel {
                    crash_per_node_hour: 600.0,
                    crash_mean_secs: 0.5,
                    scale: 8.0,
                    ..FaultModel::none()
                },
                retry: RetryPolicy::default(),
                restart_delay_secs: 1.0,
                horizon_secs: 4.0 * t0,
                recovery: Default::default(),
                sdc_threshold: 0.01,
            }),
            ..Default::default()
        };
        let r = run_job(&mut mk(), &v, &cfg, &mut NullSink).unwrap();
        assert!(
            r.ranks[0].fault.as_secs_f64() > 0.0,
            "a crash-saturated node must stall: {r:?}"
        );
        assert!(r.elapsed_secs() > t0);
        assert_eq!(r.ranks[0].other(), sim_des::SimDur::ZERO);
        // Determinism under faults.
        let r2 = run_job(&mut mk(), &v, &cfg, &mut NullSink).unwrap();
        assert_eq!(r.elapsed, r2.elapsed);
        assert_eq!(r.ranks[0], r2.ranks[0]);
    }

    #[test]
    fn retry_exhaustion_surfaces_as_error() {
        use sim_faults::{FaultModel, FaultSpec, RetryPolicy};
        let v = presets::vayu();
        let cfg = SimConfig {
            faults: Some(FaultSpec {
                model: FaultModel {
                    crash_per_node_hour: 3600.0,
                    crash_mean_secs: 1000.0,
                    scale: 8.0,
                    ..FaultModel::none()
                },
                retry: RetryPolicy {
                    timeout_secs: 1e-3,
                    backoff: 1.0,
                    max_retries: 1,
                    max_delay_secs: 1e-3,
                },
                restart_delay_secs: 1.0,
                horizon_secs: 3600.0,
                recovery: Default::default(),
                sdc_threshold: 0.01,
            }),
            ..Default::default()
        };
        let r = run_job(
            &mut job(vec![compute_block(200, 1e9)]),
            &v,
            &cfg,
            &mut NullSink,
        );
        assert!(matches!(r, Err(SimError::RetryExhausted(_))), "{r:?}");
    }

    #[test]
    fn preemption_restarts_and_checkpoints_bound_the_loss() {
        use sim_faults::{FaultModel, FaultSpec, RetryPolicy};
        let v = presets::vayu();
        // Two ranks, ~100 x 0.1s chunks each, checkpointing every 20 chunks.
        let mk = |ckpt: bool| {
            let mut progs = Vec::new();
            for _ in 0..2 {
                let mut p = Vec::new();
                for i in 0..100 {
                    p.push(Op::Compute {
                        flops: 1e9,
                        bytes: 0.0,
                    });
                    if ckpt && (i + 1) % 20 == 0 {
                        p.push(Op::Checkpoint { bytes: 1 << 24 });
                    }
                }
                progs.push(p);
            }
            job(progs)
        };
        let t0 = run_job(&mut mk(false), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let spec = FaultSpec {
            model: FaultModel {
                preempt_per_node_hour: 3600.0 / t0,
                scale: 8.0,
                ..FaultModel::none()
            },
            retry: RetryPolicy::default(),
            restart_delay_secs: t0 / 20.0,
            horizon_secs: 10.0 * t0,
            recovery: Default::default(),
            sdc_threshold: 0.01,
        };
        let cfg = SimConfig {
            faults: Some(spec),
            ..Default::default()
        };
        let plain = run_job(&mut mk(false), &v, &cfg, &mut NullSink).unwrap();
        let ckpt = run_job(&mut mk(true), &v, &cfg, &mut NullSink).unwrap();
        assert!(
            plain.restarts >= 1,
            "calibrated rate must preempt: {plain:?}"
        );
        assert!(ckpt.restarts >= 1);
        for r in plain.ranks.iter().chain(&ckpt.ranks) {
            assert_eq!(r.other(), sim_des::SimDur::ZERO, "{r:?}");
        }
        assert!(plain.elapsed_secs() > t0);
        // Re-execution makes the op count strictly larger than one clean pass.
        assert!(plain.ops_executed > 200);
        // Determinism under restart.
        let again = run_job(&mut mk(true), &v, &cfg, &mut NullSink).unwrap();
        assert_eq!(ckpt.elapsed, again.elapsed);
        assert_eq!(ckpt.restarts, again.restarts);
        for (a, b) in ckpt.ranks.iter().zip(&again.ranks) {
            assert_eq!(a, b);
        }
    }

    /// Two ranks, `chunks` compute chunks each, with a verification cut
    /// every `every` chunks.
    fn verified_progs(chunks: usize, every: usize) -> Vec<Vec<Op>> {
        let mut progs = Vec::new();
        for _ in 0..2 {
            let mut p = Vec::new();
            for i in 0..chunks {
                p.push(Op::Compute {
                    flops: 1e9,
                    bytes: 0.0,
                });
                if (i + 1) % every == 0 {
                    p.push(Op::Verify {
                        flops: 1e7,
                        state_bytes: 1 << 24,
                    });
                }
            }
            progs.push(p);
        }
        progs
    }

    #[test]
    fn verify_op_conserves_time_on_fault_free_runs() {
        let v = presets::vayu();
        let r = run_job(
            &mut job(verified_progs(40, 10)),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        for t in &r.ranks {
            assert_eq!(t.other(), sim_des::SimDur::ZERO, "{t:?}");
        }
        assert_eq!(r.sdc_detected + r.sdc_undetected, 0);
        assert_eq!(r.rollbacks, 0);
        // The checksum pass costs real compute on both ranks.
        assert!(r.ranks[0].comp.as_secs_f64() > 0.0);
    }

    #[test]
    fn sdc_rollback_recovers_without_relaunch_and_beats_restart() {
        use sim_faults::{FaultModel, FaultSpec, RecoveryStrategy, RetryPolicy};
        let v = presets::vayu();
        let mk = || job(verified_progs(100, 10));
        let t0 = run_job(&mut mk(), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let spec = |recovery| FaultSpec {
            model: FaultModel {
                sdc_per_node_hour: 4.0 * 3600.0 / t0,
                sdc_mean_severity: 1.0,
                scale: 1.0,
                ..FaultModel::none()
            },
            retry: RetryPolicy::default(),
            restart_delay_secs: t0 / 10.0,
            horizon_secs: 10.0 * t0,
            recovery,
            sdc_threshold: 0.01,
        };
        let cfg = |recovery| SimConfig {
            faults: Some(spec(recovery)),
            ..Default::default()
        };
        let abft = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::AbftRollback),
            &mut NullSink,
        )
        .unwrap();
        assert!(abft.sdc_detected >= 1, "{abft:?}");
        assert!(abft.rollbacks >= 1, "{abft:?}");
        // Detections after the first clean cut roll back instead of
        // relaunching; only one before any cut may force a restart.
        assert!(abft.restarts <= 1, "{abft:?}");
        assert!(abft.elapsed_secs() > t0);
        for t in &abft.ranks {
            assert_eq!(t.other(), sim_des::SimDur::ZERO, "{t:?}");
        }
        // Determinism under rollback.
        let again = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::AbftRollback),
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(abft.elapsed, again.elapsed);
        assert_eq!(abft.rollbacks, again.rollbacks);
        // The restart strategy relaunches from scratch (no checkpoints
        // here) on every detection — strictly worse than rolling back.
        let restart = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::Restart),
            &mut NullSink,
        )
        .unwrap();
        assert!(restart.restarts >= 1, "{restart:?}");
        assert!(
            abft.elapsed < restart.elapsed,
            "abft {} !< restart {}",
            abft.elapsed_secs(),
            restart.elapsed_secs()
        );
    }

    #[test]
    fn shrink_spare_absorbs_fatals_in_place() {
        use sim_faults::{FaultModel, FaultSpec, RecoveryStrategy, RetryPolicy};
        let v = presets::vayu();
        let mk = || job(verified_progs(100, 10));
        let t0 = run_job(&mut mk(), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let spec = |recovery| FaultSpec {
            model: FaultModel {
                preempt_per_node_hour: 2.0 * 3600.0 / t0,
                scale: 1.0,
                ..FaultModel::none()
            },
            retry: RetryPolicy::default(),
            restart_delay_secs: t0 / 5.0,
            horizon_secs: 10.0 * t0,
            recovery,
            sdc_threshold: 0.01,
        };
        let cfg = |recovery| SimConfig {
            faults: Some(spec(recovery)),
            ..Default::default()
        };
        let shrink = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::ShrinkSpare {
                spares: 8,
                respawn_delay_secs: t0 / 100.0,
            }),
            &mut NullSink,
        )
        .unwrap();
        assert!(shrink.shrinks >= 1, "{shrink:?}");
        for t in &shrink.ranks {
            assert_eq!(t.other(), sim_des::SimDur::ZERO, "{t:?}");
        }
        let restart = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::Restart),
            &mut NullSink,
        )
        .unwrap();
        assert!(restart.restarts >= 1);
        assert_eq!(restart.shrinks, 0);
        assert!(
            shrink.elapsed < restart.elapsed,
            "shrink {} !< restart {}",
            shrink.elapsed_secs(),
            restart.elapsed_secs()
        );
        // An empty spare pool falls back to full restarts.
        let exhausted = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::ShrinkSpare {
                spares: 0,
                respawn_delay_secs: t0 / 100.0,
            }),
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(exhausted.shrinks, 0);
        assert!(exhausted.restarts >= 1);
        // Determinism under shrink.
        let again = run_job(
            &mut mk(),
            &v,
            &cfg(RecoveryStrategy::ShrinkSpare {
                spares: 8,
                respawn_delay_secs: t0 / 100.0,
            }),
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(shrink.elapsed, again.elapsed);
        assert_eq!(shrink.shrinks, again.shrinks);
    }

    #[test]
    fn subthreshold_sdc_escapes_every_detector() {
        use sim_faults::{FaultModel, FaultSpec, RecoveryStrategy, RetryPolicy};
        let v = presets::vayu();
        let mk = || job(verified_progs(100, 10));
        let t0 = run_job(&mut mk(), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let cfg = SimConfig {
            faults: Some(FaultSpec {
                model: FaultModel {
                    sdc_per_node_hour: 4.0 * 3600.0 / t0,
                    sdc_mean_severity: 1.0,
                    scale: 8.0,
                    ..FaultModel::none()
                },
                retry: RetryPolicy::default(),
                restart_delay_secs: t0 / 10.0,
                horizon_secs: 10.0 * t0,
                recovery: RecoveryStrategy::AbftRollback,
                // No real corruption reaches this threshold: they all escape.
                sdc_threshold: 1e18,
            }),
            ..Default::default()
        };
        let r = run_job(&mut mk(), &v, &cfg, &mut NullSink).unwrap();
        assert_eq!(r.sdc_detected, 0);
        assert!(r.sdc_undetected >= 1, "{r:?}");
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.restarts, 0);
    }

    #[test]
    fn uncovered_sdc_drains_as_undetected_at_job_end() {
        use sim_faults::{FaultModel, FaultSpec, RetryPolicy};
        let v = presets::vayu();
        // No Verify or Checkpoint ops: nothing ever adjudicates the
        // corruptions, so they surface as undetected when the job ends.
        let mk = || job(vec![compute_block(50, 1e9)]);
        let t0 = run_job(&mut mk(), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let cfg = SimConfig {
            faults: Some(FaultSpec {
                model: FaultModel {
                    sdc_per_node_hour: 4.0 * 3600.0 / t0,
                    sdc_mean_severity: 1.0,
                    scale: 8.0,
                    ..FaultModel::none()
                },
                retry: RetryPolicy::default(),
                restart_delay_secs: 1.0,
                horizon_secs: t0,
                recovery: Default::default(),
                sdc_threshold: 0.01,
            }),
            ..Default::default()
        };
        let r = run_job(&mut mk(), &v, &cfg, &mut NullSink).unwrap();
        assert_eq!(r.sdc_detected, 0);
        assert!(r.sdc_undetected >= 1, "{r:?}");
        assert_eq!(r.restarts, 0);
        // The run itself is unperturbed: corruption is *silent*.
        assert!((r.elapsed_secs() - t0).abs() < 1e-9);
    }

    #[test]
    fn empty_program_rank_finishes_at_time_zero() {
        let v = presets::vayu();
        let r = run_job(
            &mut job(vec![
                vec![Op::Compute {
                    flops: 1e6,
                    bytes: 0.0,
                }],
                vec![],
            ]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(r.ranks[1].wall, sim_des::SimDur::ZERO);
        assert!(r.ranks[0].wall.0 > 0);
    }
}
