//! Profiling hook: the seam between the MPI engine and the IPM-style
//! monitor.
//!
//! The engine emits a [`ProfEvent`] for every timed activity of every rank.
//! `sim-ipm` implements [`ProfSink`] to build per-section, per-call ledgers;
//! [`NullSink`] discards everything for unprofiled runs.

use crate::op::SectionId;
use sim_des::SimTime;

/// Category of a timed MPI activity, mirroring the call names IPM reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiKind {
    Send,
    Recv,
    Sendrecv,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
    Alltoall,
    Gather,
    Scatter,
}

impl MpiKind {
    pub fn name(&self) -> &'static str {
        match self {
            MpiKind::Send => "MPI_Send",
            MpiKind::Recv => "MPI_Recv",
            MpiKind::Sendrecv => "MPI_Sendrecv",
            MpiKind::Barrier => "MPI_Barrier",
            MpiKind::Bcast => "MPI_Bcast",
            MpiKind::Reduce => "MPI_Reduce",
            MpiKind::Allreduce => "MPI_Allreduce",
            MpiKind::Allgather => "MPI_Allgather",
            MpiKind::Alltoall => "MPI_Alltoall",
            MpiKind::Gather => "MPI_Gather",
            MpiKind::Scatter => "MPI_Scatter",
        }
    }

    /// Whether the call is a collective (spends part of its time waiting on
    /// other ranks — IPM can't distinguish wait from wire either).
    pub fn is_collective(&self) -> bool {
        !matches!(self, MpiKind::Send | MpiKind::Recv | MpiKind::Sendrecv)
    }
}

/// Direction of a file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    Read,
    Write,
}

/// One timed activity on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfEvent {
    SectionEnter {
        id: SectionId,
        t: SimTime,
    },
    SectionExit {
        id: SectionId,
        t: SimTime,
    },
    Compute {
        start: SimTime,
        end: SimTime,
    },
    Mpi {
        kind: MpiKind,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    },
    Io {
        kind: IoKind,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    },
    /// A rank stalled on a transient fault (crashed node + retry/backoff).
    Fault {
        start: SimTime,
        end: SimTime,
    },
    /// The whole job died on a fatal fault and relaunched at `end`; any
    /// profiling sections open at `start` were aborted and will be
    /// re-entered when the rank re-executes its program. Also emitted for
    /// ABFT rollbacks and shrink recoveries (the gap may be zero), so the
    /// section stack reset and fault accounting stay uniform.
    Restart {
        start: SimTime,
        end: SimTime,
    },
    /// An ABFT verification cut (barrier + checksum pass). Overlays the
    /// `Mpi`/`Compute` events the cut also emits — informational
    /// attribution, not part of the comm/comp conservation.
    Verify {
        start: SimTime,
        end: SimTime,
    },
    /// A shrink-and-spare recovery: communicator repair plus state
    /// redistribution to the replacement node. Overlays the `Restart`
    /// event carrying the same gap.
    Shrink {
        start: SimTime,
        end: SimTime,
    },
    /// A silent-data-corruption event was adjudicated at a verification or
    /// checkpoint cut (or at job end, for corruptions no cut ever covered).
    Sdc {
        t: SimTime,
        detected: bool,
    },
}

/// Receiver of profile events.
pub trait ProfSink {
    fn on_event(&mut self, rank: usize, ev: ProfEvent);

    /// Whether this sink consumes events at all. The engine checks once per
    /// run and skips building `ProfEvent`s (timestamp conversions, section
    /// lookups) on the hot path when the sink is a black hole.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProfSink for NullSink {
    fn on_event(&mut self, _rank: usize, _ev: ProfEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_mpi_spelled() {
        assert_eq!(MpiKind::Allreduce.name(), "MPI_Allreduce");
        assert_eq!(MpiKind::Sendrecv.name(), "MPI_Sendrecv");
    }

    #[test]
    fn collectivity() {
        assert!(MpiKind::Allreduce.is_collective());
        assert!(MpiKind::Barrier.is_collective());
        assert!(!MpiKind::Send.is_collective());
        assert!(!MpiKind::Sendrecv.is_collective());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.on_event(
            0,
            ProfEvent::Compute {
                start: SimTime(0),
                end: SimTime(10),
            },
        );
    }
}
