//! The operation vocabulary of simulated MPI programs.
//!
//! A workload compiles, per rank, to a sequence of [`Op`]s — compute chunks,
//! point-to-point messages, collectives, file I/O and section markers. The
//! engine in [`crate::engine`] executes one `Vec<Op>` per rank against a
//! platform model.

/// Rank index within the job.
pub type Rank = u32;

/// Message tag (matching is FIFO per `(source, dest, tag)`).
pub type Tag = u32;

/// Index into the job's section-name table.
pub type SectionId = u16;

/// Rank-local non-blocking request handle (see [`Op::Isend`], [`Op::Irecv`],
/// [`Op::Wait`]). A handle may be reused after it has been waited on.
pub type ReqId = u32;

/// A communicator: the set of ranks participating in a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// All ranks of the job (`MPI_COMM_WORLD`).
    World,
    /// `count` ranks starting at `first`, `stride` apart — covers row and
    /// column communicators of the 2-D decompositions the workloads use.
    Strided { first: Rank, count: u32, stride: u32 },
}

impl Group {
    /// Number of member ranks (`np` = world size).
    pub fn size(&self, np: usize) -> usize {
        match self {
            Group::World => np,
            Group::Strided { count, .. } => *count as usize,
        }
    }

    /// Whether `rank` belongs to the group.
    pub fn contains(&self, rank: Rank, np: usize) -> bool {
        match self {
            Group::World => (rank as usize) < np,
            Group::Strided { first, count, stride } => {
                let stride = (*stride).max(1);
                rank >= *first
                    && (rank - first) % stride == 0
                    && (rank - first) / stride < *count
            }
        }
    }

    /// Iterate the member ranks.
    pub fn members(&self, np: usize) -> Vec<Rank> {
        match self {
            Group::World => (0..np as Rank).collect(),
            Group::Strided { first, count, stride } => {
                let stride = (*stride).max(1);
                (0..*count).map(|i| first + i * stride).collect()
            }
        }
    }
}

/// One operation of a rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Local work: a roofline chunk of `flops` floating-point operations
    /// touching `bytes` of memory traffic.
    Compute { flops: f64, bytes: f64 },
    /// Eager/rendezvous point-to-point send.
    Send { to: Rank, bytes: usize, tag: Tag },
    /// Blocking receive matching `(from, tag)` in FIFO order.
    Recv { from: Rank, bytes: usize, tag: Tag },
    /// Non-blocking send: identical wire behaviour to [`Op::Send`] (sends
    /// are already asynchronous), but completion is observed via
    /// [`Op::Wait`] on `req`, like `MPI_Isend`.
    Isend {
        to: Rank,
        bytes: usize,
        tag: Tag,
        req: ReqId,
    },
    /// Non-blocking receive: posts the match immediately and returns;
    /// [`Op::Wait`] on `req` blocks until the message has arrived. This is
    /// what lets codes overlap halo exchange with interior compute.
    Irecv {
        from: Rank,
        bytes: usize,
        tag: Tag,
        req: ReqId,
    },
    /// Complete a previously issued non-blocking operation.
    Wait { req: ReqId },
    /// Paired sendrecv with a partner (halo exchanges): both ranks
    /// synchronize, exchange `send_bytes`/`recv_bytes`, and proceed.
    /// Deadlock-free by construction, which is why the workloads use it for
    /// neighbour exchanges, exactly like real codes use `MPI_Sendrecv`.
    Exchange {
        partner: Rank,
        send_bytes: usize,
        recv_bytes: usize,
        tag: Tag,
    },
    /// A collective over the whole job (see `CollOp`).
    Coll(CollOp),
    /// A collective over a sub-communicator — e.g. the row/column
    /// communicators of a 2-D processor grid. Every member must issue the
    /// same group collectives in the same order.
    GroupColl { group: Group, op: CollOp },
    /// Read `bytes` from the shared filesystem.
    FileRead { bytes: u64 },
    /// Write `bytes` to the shared filesystem.
    FileWrite { bytes: u64 },
    /// Enter a named profiling section (IPM-style region).
    SectionEnter(SectionId),
    /// Leave a named profiling section.
    SectionExit(SectionId),
}

/// Collective operations with their per-rank payload sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollOp {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast of `bytes` from `root`.
    Bcast { root: Rank, bytes: usize },
    /// Binomial-tree reduction of `bytes` to `root`.
    Reduce { root: Rank, bytes: usize },
    /// Recursive-doubling allreduce of `bytes` (the 4-byte flavour of this
    /// is what dominates the Chaste KSp section).
    Allreduce { bytes: usize },
    /// Recursive-doubling allgather; every rank contributes `bytes_per_rank`.
    Allgather { bytes_per_rank: usize },
    /// Pairwise-exchange all-to-all; every rank sends `bytes_per_pair` to
    /// every other rank (FT's transpose, IS's key shuffle).
    Alltoall { bytes_per_pair: usize },
    /// Binomial gather of `bytes_per_rank` from every rank to `root`.
    Gather { root: Rank, bytes_per_rank: usize },
    /// Binomial scatter of `bytes_per_rank` from `root` to every rank.
    Scatter { root: Rank, bytes_per_rank: usize },
}

impl CollOp {
    /// Short MPI-style name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CollOp::Barrier => "MPI_Barrier",
            CollOp::Bcast { .. } => "MPI_Bcast",
            CollOp::Reduce { .. } => "MPI_Reduce",
            CollOp::Allreduce { .. } => "MPI_Allreduce",
            CollOp::Allgather { .. } => "MPI_Allgather",
            CollOp::Alltoall { .. } => "MPI_Alltoall",
            CollOp::Gather { .. } => "MPI_Gather",
            CollOp::Scatter { .. } => "MPI_Scatter",
        }
    }

    /// Bytes this collective moves per rank (used for histogram bucketing).
    pub fn bytes_per_rank(&self, np: usize) -> u64 {
        match *self {
            CollOp::Barrier => 0,
            CollOp::Bcast { bytes, .. } | CollOp::Reduce { bytes, .. } | CollOp::Allreduce { bytes } => {
                bytes as u64
            }
            CollOp::Allgather { bytes_per_rank }
            | CollOp::Gather { bytes_per_rank, .. }
            | CollOp::Scatter { bytes_per_rank, .. } => bytes_per_rank as u64,
            CollOp::Alltoall { bytes_per_pair } => bytes_per_pair as u64 * np.saturating_sub(1) as u64,
        }
    }
}

/// A complete job: one op program per rank plus section names.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name for reports ("cg.B", "metum.n320l70", ...).
    pub name: String,
    /// `programs[r]` is rank `r`'s op sequence.
    pub programs: Vec<Vec<Op>>,
    /// Names of profiling sections, indexed by [`SectionId`].
    pub section_names: Vec<&'static str>,
}

impl JobSpec {
    /// Number of ranks.
    pub fn np(&self) -> usize {
        self.programs.len()
    }

    /// Total ops across all ranks (progress/size diagnostics).
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }

    /// Validate structural well-formedness:
    /// * every `Send` has a matching `Recv` (and vice versa) per channel,
    /// * every `Exchange` is mirrored by the partner with swapped sizes,
    /// * all ranks issue the same number of collectives, in the same kinds,
    /// * section enters/exits balance per rank,
    /// * targets are in range.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let np = self.np() as u32;
        let mut sends: HashMap<(u32, u32, Tag), usize> = HashMap::new();
        let mut recvs: HashMap<(u32, u32, Tag), usize> = HashMap::new();
        let mut exchanges: HashMap<(u32, u32, Tag), i64> = HashMap::new();
        let mut coll_seqs: Vec<Vec<(&'static str, Group, &'static str)>> =
            Vec::with_capacity(self.programs.len());
        for (r, prog) in self.programs.iter().enumerate() {
            let r = r as u32;
            let mut colls: Vec<(&str, Group, &str)> = Vec::new();
            let mut depth: i32 = 0;
            let mut open_reqs: std::collections::HashSet<u32> = Default::default();
            for op in prog {
                match op {
                    Op::Isend { to, tag, req, .. } => {
                        if *to >= np {
                            return Err(format!("rank {r}: isend to out-of-range rank {to}"));
                        }
                        if *to == r {
                            return Err(format!("rank {r}: isend to self"));
                        }
                        if !open_reqs.insert(*req) {
                            return Err(format!("rank {r}: request {req} reused before wait"));
                        }
                        *sends.entry((r, *to, *tag)).or_default() += 1;
                    }
                    Op::Irecv { from, tag, req, .. } => {
                        if *from >= np {
                            return Err(format!("rank {r}: irecv from out-of-range rank {from}"));
                        }
                        if !open_reqs.insert(*req) {
                            return Err(format!("rank {r}: request {req} reused before wait"));
                        }
                        *recvs.entry((*from, r, *tag)).or_default() += 1;
                    }
                    Op::Wait { req } => {
                        if !open_reqs.remove(req) {
                            return Err(format!("rank {r}: wait on unknown request {req}"));
                        }
                    }
                    Op::Send { to, tag, .. } => {
                        if *to >= np {
                            return Err(format!("rank {r}: send to out-of-range rank {to}"));
                        }
                        if *to == r {
                            return Err(format!("rank {r}: send to self"));
                        }
                        *sends.entry((r, *to, *tag)).or_default() += 1;
                    }
                    Op::Recv { from, tag, .. } => {
                        if *from >= np {
                            return Err(format!("rank {r}: recv from out-of-range rank {from}"));
                        }
                        *recvs.entry((*from, r, *tag)).or_default() += 1;
                    }
                    Op::Exchange { partner, tag, .. } => {
                        if *partner >= np {
                            return Err(format!("rank {r}: exchange with out-of-range {partner}"));
                        }
                        if *partner == r {
                            return Err(format!("rank {r}: exchange with self"));
                        }
                        let key = (r.min(*partner), r.max(*partner), *tag);
                        *exchanges.entry(key).or_default() += if r < *partner { 1 } else { -1 };
                    }
                    Op::Coll(c) => colls.push(("world", Group::World, c.name())),
                    Op::GroupColl { group, op } => {
                        if !group.contains(r, np as usize) {
                            return Err(format!(
                                "rank {r}: group collective on a group it is not in"
                            ));
                        }
                        if let Group::Strided { first, count, stride } = group {
                            let last = *first as u64
                                + (count.saturating_sub(1) as u64) * (*stride).max(1) as u64;
                            if last >= np as u64 {
                                return Err(format!(
                                    "rank {r}: group extends past rank {last} >= np {np}"
                                ));
                            }
                        }
                        colls.push(("group", *group, op.name()));
                    }
                    Op::SectionEnter(id) => {
                        if *id as usize >= self.section_names.len() {
                            return Err(format!("rank {r}: unknown section id {id}"));
                        }
                        depth += 1;
                    }
                    Op::SectionExit(_) => {
                        depth -= 1;
                        if depth < 0 {
                            return Err(format!("rank {r}: section exit without enter"));
                        }
                    }
                    Op::Compute { flops, bytes } => {
                        if !flops.is_finite() || !bytes.is_finite() || *flops < 0.0 || *bytes < 0.0 {
                            return Err(format!("rank {r}: bad compute chunk {flops}/{bytes}"));
                        }
                    }
                    Op::FileRead { .. } | Op::FileWrite { .. } => {}
                }
            }
            if depth != 0 {
                return Err(format!("rank {r}: {depth} unclosed sections"));
            }
            if !open_reqs.is_empty() {
                return Err(format!(
                    "rank {r}: {} request(s) never waited on",
                    open_reqs.len()
                ));
            }
            coll_seqs.push(colls);
        }
        for (key, n) in &sends {
            let m = recvs.get(key).copied().unwrap_or(0);
            if *n != m {
                return Err(format!("channel {key:?}: {n} sends vs {m} recvs"));
            }
        }
        for (key, m) in &recvs {
            if !sends.contains_key(key) {
                return Err(format!("channel {key:?}: {m} recvs with no send"));
            }
        }
        for (key, bal) in &exchanges {
            if *bal != 0 {
                return Err(format!("exchange {key:?}: unbalanced by {bal}"));
            }
        }
        // Per communicator, every member must issue the same sequence.
        let mut by_group: HashMap<Group, Vec<(u32, Vec<&str>)>> = HashMap::new();
        for (r, seq) in coll_seqs.iter().enumerate() {
            let mut per_rank: HashMap<Group, Vec<&str>> = HashMap::new();
            for (_, g, name) in seq.iter() {
                per_rank.entry(*g).or_default().push(name);
            }
            for (g, names) in per_rank {
                by_group.entry(g).or_default().push((r as u32, names));
            }
        }
        for (g, seqs) in &by_group {
            let expected_members = g.size(self.np());
            if seqs.len() != expected_members {
                return Err(format!(
                    "group {g:?}: {} rank(s) issued its collectives but it has {expected_members} members",
                    seqs.len()
                ));
            }
            for (r, names) in &seqs[1..] {
                if *names != seqs[0].1 {
                    return Err(format!(
                        "rank {r} issues a different collective sequence on {g:?} than rank {}",
                        seqs[0].0
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(programs: Vec<Vec<Op>>) -> JobSpec {
        JobSpec {
            name: "test".into(),
            programs,
            section_names: vec!["main"],
        }
    }

    #[test]
    fn validate_accepts_matched_pt2pt() {
        let j = job(vec![
            vec![Op::Send { to: 1, bytes: 8, tag: 0 }],
            vec![Op::Recv { from: 0, bytes: 8, tag: 0 }],
        ]);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unmatched_send() {
        let j = job(vec![
            vec![Op::Send { to: 1, bytes: 8, tag: 0 }],
            vec![],
        ]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_recv_without_send() {
        let j = job(vec![
            vec![],
            vec![Op::Recv { from: 0, bytes: 8, tag: 0 }],
        ]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_send_and_out_of_range() {
        let j = job(vec![vec![Op::Send { to: 0, bytes: 8, tag: 0 }]]);
        assert!(j.validate().is_err());
        let j = job(vec![vec![Op::Send { to: 9, bytes: 8, tag: 0 }]]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_requires_mirrored_exchange() {
        let ok = job(vec![
            vec![Op::Exchange { partner: 1, send_bytes: 8, recv_bytes: 16, tag: 7 }],
            vec![Op::Exchange { partner: 0, send_bytes: 16, recv_bytes: 8, tag: 7 }],
        ]);
        assert!(ok.validate().is_ok());
        let bad = job(vec![
            vec![Op::Exchange { partner: 1, send_bytes: 8, recv_bytes: 8, tag: 7 }],
            vec![],
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_requires_identical_collective_sequences() {
        let ok = job(vec![
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
        ]);
        assert!(ok.validate().is_ok());
        let bad = job(vec![
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
            vec![Op::Coll(CollOp::Barrier)],
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_requires_balanced_sections() {
        let bad = job(vec![vec![Op::SectionEnter(0)]]);
        assert!(bad.validate().is_err());
        let bad2 = job(vec![vec![Op::SectionExit(0)]]);
        assert!(bad2.validate().is_err());
        let ok = job(vec![vec![Op::SectionEnter(0), Op::SectionExit(0)]]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn alltoall_bytes_per_rank_counts_peers() {
        let c = CollOp::Alltoall { bytes_per_pair: 100 };
        assert_eq!(c.bytes_per_rank(5), 400);
        assert_eq!(CollOp::Barrier.bytes_per_rank(5), 0);
    }
}
