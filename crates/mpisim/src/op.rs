//! The operation vocabulary of simulated MPI programs — and the lazy
//! [`Program`] abstraction that feeds them to the engine.
//!
//! A workload compiles, per rank, to a *source* of [`Op`]s — compute chunks,
//! point-to-point messages, collectives, file I/O and section markers. Since
//! the streaming refactor a rank's program is no longer a materialized
//! `Vec<Op>`: it is an [`OpSource`], either
//!
//! * [`OpSource::Materialized`] — a pre-built op list with a cursor (kept for
//!   tests, validation fixtures and equivalence checks), or
//! * [`OpSource::Streamed`] — a boxed [`Program`] generator that yields ops
//!   on demand, one [`Program::next_op`] at a time, and can be
//!   [`Program::rewind`]-ed for repeated runs (the paper's min-of-5
//!   methodology re-runs the same job with different noise seeds).
//!
//! Workload builders implement generators with [`BlockProgram`]: a closure
//! that emits one *block* of ops (typically one timestep or solver
//! iteration) per call, so peak memory is O(np · block) instead of
//! O(total ops). Job-wide metadata that used to live beside the programs
//! (name, rank count, section table) now lives in [`JobMeta`], which the
//! profiling layers consume without ever touching the op streams.

/// Rank index within the job.
pub type Rank = u32;

/// Message tag (matching is FIFO per `(source, dest, tag)`).
pub type Tag = u32;

/// Index into the job's section-name table.
pub type SectionId = u16;

/// Rank-local non-blocking request handle (see [`Op::Isend`], [`Op::Irecv`],
/// [`Op::Wait`]). A handle may be reused after it has been waited on.
pub type ReqId = u32;

/// A communicator: the set of ranks participating in a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// All ranks of the job (`MPI_COMM_WORLD`).
    World,
    /// `count` ranks starting at `first`, `stride` apart — covers row and
    /// column communicators of the 2-D decompositions the workloads use.
    Strided {
        first: Rank,
        count: u32,
        stride: u32,
    },
}

impl Group {
    /// Number of member ranks (`np` = world size).
    pub fn size(&self, np: usize) -> usize {
        match self {
            Group::World => np,
            Group::Strided { count, .. } => *count as usize,
        }
    }

    /// Whether `rank` belongs to the group.
    pub fn contains(&self, rank: Rank, np: usize) -> bool {
        match self {
            Group::World => (rank as usize) < np,
            Group::Strided {
                first,
                count,
                stride,
            } => {
                let stride = (*stride).max(1);
                rank >= *first
                    && (rank - first).is_multiple_of(stride)
                    && (rank - first) / stride < *count
            }
        }
    }

    /// Iterate the member ranks without allocating.
    pub fn members(self, np: usize) -> impl Iterator<Item = Rank> {
        let (first, count, stride) = match self {
            Group::World => (0, np as u32, 1),
            Group::Strided {
                first,
                count,
                stride,
            } => (first, count, stride.max(1)),
        };
        (0..count).map(move |i| first + i * stride)
    }
}

/// One operation of a rank's program. `Copy`: every variant is a handful
/// of scalars, so workload generators can hoist an op value out of their
/// emit closures and push it by value per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Local work: a roofline chunk of `flops` floating-point operations
    /// touching `bytes` of memory traffic.
    Compute { flops: f64, bytes: f64 },
    /// Eager/rendezvous point-to-point send.
    Send { to: Rank, bytes: usize, tag: Tag },
    /// Blocking receive matching `(from, tag)` in FIFO order.
    Recv { from: Rank, bytes: usize, tag: Tag },
    /// Non-blocking send: identical wire behaviour to [`Op::Send`] (sends
    /// are already asynchronous), but completion is observed via
    /// [`Op::Wait`] on `req`, like `MPI_Isend`.
    Isend {
        to: Rank,
        bytes: usize,
        tag: Tag,
        req: ReqId,
    },
    /// Non-blocking receive: posts the match immediately and returns;
    /// [`Op::Wait`] on `req` blocks until the message has arrived. This is
    /// what lets codes overlap halo exchange with interior compute.
    Irecv {
        from: Rank,
        bytes: usize,
        tag: Tag,
        req: ReqId,
    },
    /// Complete a previously issued non-blocking operation.
    Wait { req: ReqId },
    /// Paired sendrecv with a partner (halo exchanges): both ranks
    /// synchronize, exchange `send_bytes`/`recv_bytes`, and proceed.
    /// Deadlock-free by construction, which is why the workloads use it for
    /// neighbour exchanges, exactly like real codes use `MPI_Sendrecv`.
    Exchange {
        partner: Rank,
        send_bytes: usize,
        recv_bytes: usize,
        tag: Tag,
    },
    /// A collective over the whole job (see `CollOp`).
    Coll(CollOp),
    /// A collective over a sub-communicator — e.g. the row/column
    /// communicators of a 2-D processor grid. Every member must issue the
    /// same group collectives in the same order.
    GroupColl { group: Group, op: CollOp },
    /// Read `bytes` from the shared filesystem.
    FileRead { bytes: u64 },
    /// Write `bytes` to the shared filesystem.
    FileWrite { bytes: u64 },
    /// Coordinated checkpoint: all ranks synchronize (barrier), then each
    /// writes `bytes` of state to the shared filesystem. On a fatal fault
    /// the engine rewinds every rank's program and fast-forwards past the
    /// last globally completed checkpoint, re-charging the restore I/O —
    /// which is exactly how coordinated checkpoint/restart libraries
    /// (BLCR, DMTCP, SCR) behave. Every rank must issue the same number of
    /// checkpoints at consistent cut points (no pt2pt straddling the cut).
    Checkpoint { bytes: u64 },
    /// ABFT verification cut: all ranks synchronize (barrier), then each
    /// runs `flops` of checksum/drift checking over its live state. Any
    /// silent corruption that landed before the cut is detected here (or
    /// counted as undetected if its severity is below the detector's
    /// threshold), and detection triggers the configured
    /// `RecoveryStrategy`. A completed clean verify becomes the rollback
    /// target for `AbftRollback`/`ShrinkSpare`; `state_bytes` is the
    /// per-rank live state a spare must re-fetch on a shrink recovery.
    /// Like checkpoints, every rank must issue the same verifies at
    /// consistent cut points.
    Verify { flops: f64, state_bytes: u64 },
    /// Enter a named profiling section (IPM-style region).
    SectionEnter(SectionId),
    /// Leave a named profiling section.
    SectionExit(SectionId),
}

/// Collective operations with their per-rank payload sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollOp {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast of `bytes` from `root`.
    Bcast { root: Rank, bytes: usize },
    /// Binomial-tree reduction of `bytes` to `root`.
    Reduce { root: Rank, bytes: usize },
    /// Recursive-doubling allreduce of `bytes` (the 4-byte flavour of this
    /// is what dominates the Chaste KSp section).
    Allreduce { bytes: usize },
    /// Recursive-doubling allgather; every rank contributes `bytes_per_rank`.
    Allgather { bytes_per_rank: usize },
    /// Pairwise-exchange all-to-all; every rank sends `bytes_per_pair` to
    /// every other rank (FT's transpose, IS's key shuffle).
    Alltoall { bytes_per_pair: usize },
    /// Binomial gather of `bytes_per_rank` from every rank to `root`.
    Gather { root: Rank, bytes_per_rank: usize },
    /// Binomial scatter of `bytes_per_rank` from `root` to every rank.
    Scatter { root: Rank, bytes_per_rank: usize },
}

impl CollOp {
    /// Short MPI-style name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CollOp::Barrier => "MPI_Barrier",
            CollOp::Bcast { .. } => "MPI_Bcast",
            CollOp::Reduce { .. } => "MPI_Reduce",
            CollOp::Allreduce { .. } => "MPI_Allreduce",
            CollOp::Allgather { .. } => "MPI_Allgather",
            CollOp::Alltoall { .. } => "MPI_Alltoall",
            CollOp::Gather { .. } => "MPI_Gather",
            CollOp::Scatter { .. } => "MPI_Scatter",
        }
    }

    /// Bytes this collective moves per rank (used for histogram bucketing).
    pub fn bytes_per_rank(&self, np: usize) -> u64 {
        match *self {
            CollOp::Barrier => 0,
            CollOp::Bcast { bytes, .. }
            | CollOp::Reduce { bytes, .. }
            | CollOp::Allreduce { bytes } => bytes as u64,
            CollOp::Allgather { bytes_per_rank }
            | CollOp::Gather { bytes_per_rank, .. }
            | CollOp::Scatter { bytes_per_rank, .. } => bytes_per_rank as u64,
            CollOp::Alltoall { bytes_per_pair } => {
                bytes_per_pair as u64 * np.saturating_sub(1) as u64
            }
        }
    }
}

/// A lazy per-rank op source. The engine pulls ops one at a time with
/// [`Program::next_op`]; [`Program::rewind`] restores the start so the same
/// job can be re-run (repeats differ only in the noise seed).
///
/// Implementations must be deterministic: after a rewind, the same op
/// sequence must be produced again.
pub trait Program: Send {
    /// Produce the next op, or `None` when the program is exhausted.
    fn next_op(&mut self) -> Option<Op>;

    /// Reset to the beginning of the op sequence.
    fn rewind(&mut self);
}

/// A [`Program`] built from a block-emitting closure.
///
/// The closure is called with a block index `k` (0, 1, 2, ...) and a scratch
/// buffer; it appends block `k`'s ops to the buffer and returns `true`, or
/// returns `false` (leaving the buffer empty) when `k` is past the end.
/// Workloads use one block per timestep/iteration plus prologue/epilogue
/// blocks, so only one block per rank is resident at a time.
pub struct BlockProgram<F> {
    emit: F,
    block: usize,
    buf: Vec<Op>,
    pos: usize,
}

impl<F> BlockProgram<F>
where
    F: FnMut(usize, &mut Vec<Op>) -> bool + Send,
{
    pub fn new(emit: F) -> Self {
        BlockProgram {
            emit,
            block: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl<F> Program for BlockProgram<F>
where
    F: FnMut(usize, &mut Vec<Op>) -> bool + Send,
{
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if self.pos < self.buf.len() {
                let op = self.buf[self.pos];
                self.pos += 1;
                return Some(op);
            }
            self.buf.clear();
            self.pos = 0;
            if !(self.emit)(self.block, &mut self.buf) {
                return None;
            }
            self.block += 1;
        }
    }

    fn rewind(&mut self) {
        self.block = 0;
        self.buf.clear();
        self.pos = 0;
    }
}

/// A [`Program`] whose op stream is `prologue ++ body × blocks ++ epilogue`,
/// with all three segments generated once at construction and replayed from
/// cached buffers.
///
/// Most iterative workloads emit an *identical* op block every timestep —
/// only the block count varies with the problem class. Driving those through
/// [`BlockProgram`] re-runs the emitting closure (and re-fills the scratch
/// buffer) once per iteration per run, which dominates the engine's own cost
/// at high rank counts. Workloads whose blocks genuinely depend on the
/// iteration index (LU's rotating tag base, MetUM's first-timestep sections)
/// must keep [`BlockProgram`].
///
/// Segments are stored *dictionary-encoded*: the distinct [`Op`] values go
/// into a small per-program table and the segments hold `u16` indices into
/// it. A program block repeats a handful of op shapes (one compute chunk,
/// a few exchange patterns, an allreduce), so the index stream is ~16×
/// smaller than a `Vec<Op>` — at high rank counts the op streams of every
/// rank cycle through cache each iteration, and that footprint difference
/// is directly visible in engine throughput.
pub struct CyclicProgram {
    /// Distinct ops, in first-appearance order.
    dict: Vec<Op>,
    prologue: Vec<u16>,
    body: Vec<u16>,
    epilogue: Vec<u16>,
    blocks: usize,
    /// 0 = prologue, 1 = body repeats, 2 = epilogue, 3 = done.
    seg: u8,
    /// Completed body repetitions.
    k: usize,
    pos: usize,
}

impl CyclicProgram {
    /// `build_body` fills one iteration's ops; the stream repeats it
    /// `blocks` times.
    pub fn new(blocks: usize, build_body: impl FnOnce(&mut Vec<Op>)) -> Self {
        let mut p = CyclicProgram {
            dict: Vec::new(),
            prologue: Vec::new(),
            body: Vec::new(),
            epilogue: Vec::new(),
            blocks,
            seg: 0,
            k: 0,
            pos: 0,
        };
        let mut ops = Vec::new();
        build_body(&mut ops);
        p.body = p.intern(&ops);
        p
    }

    /// Ops emitted once before the first body repetition.
    pub fn with_prologue(mut self, build: impl FnOnce(&mut Vec<Op>)) -> Self {
        let mut ops = Vec::new();
        build(&mut ops);
        self.prologue = self.intern(&ops);
        self
    }

    /// Ops emitted once after the last body repetition.
    pub fn with_epilogue(mut self, build: impl FnOnce(&mut Vec<Op>)) -> Self {
        let mut ops = Vec::new();
        build(&mut ops);
        self.epilogue = self.intern(&ops);
        self
    }

    /// Map `ops` to dictionary indices, growing the dictionary with any op
    /// value not seen before. Linear probing is fine: dictionaries stay
    /// tiny (a block re-uses the same few op shapes), and this runs once
    /// per program at build time.
    fn intern(&mut self, ops: &[Op]) -> Vec<u16> {
        ops.iter()
            .map(|op| {
                if let Some(i) = self.dict.iter().position(|d| d == op) {
                    return i as u16;
                }
                assert!(
                    self.dict.len() < u16::MAX as usize,
                    "CyclicProgram dictionary overflow: >65534 distinct ops in one rank's block"
                );
                self.dict.push(*op);
                (self.dict.len() - 1) as u16
            })
            .collect()
    }
}

impl CyclicProgram {
    /// Advance `(seg, pos)` past exhausted segments so that, on return, the
    /// cursor either points at a real op or `seg == 3` (done). Keeping this
    /// invariant lets `peek` be a plain bounds-checked index.
    fn normalize(&mut self) {
        loop {
            let len = match self.seg {
                0 => self.prologue.len(),
                1 => self.body.len(),
                2 => self.epilogue.len(),
                _ => return,
            };
            if self.pos < len {
                return;
            }
            self.pos = 0;
            match self.seg {
                0 => {
                    self.seg = if self.blocks > 0 && !self.body.is_empty() {
                        1
                    } else {
                        2
                    };
                }
                1 => {
                    self.k += 1;
                    if self.k >= self.blocks {
                        self.seg = 2;
                    }
                }
                _ => self.seg = 3,
            }
        }
    }

    /// The op `advance` would return, without consuming it.
    #[inline]
    fn peek(&mut self) -> Option<&Op> {
        self.normalize();
        let idx = match self.seg {
            0 => self.prologue[self.pos],
            1 => self.body[self.pos],
            2 => self.epilogue[self.pos],
            _ => return None,
        };
        Some(&self.dict[idx as usize])
    }

    /// Produce the next op and move the cursor forward.
    #[inline]
    fn advance(&mut self) -> Option<Op> {
        self.normalize();
        let idx = match self.seg {
            0 => self.prologue[self.pos],
            1 => self.body[self.pos],
            2 => self.epilogue[self.pos],
            _ => return None,
        };
        self.pos += 1;
        Some(self.dict[idx as usize])
    }
}

impl Program for CyclicProgram {
    fn next_op(&mut self) -> Option<Op> {
        self.advance()
    }

    fn rewind(&mut self) {
        self.seg = 0;
        self.k = 0;
        self.pos = 0;
    }
}

/// One rank's op source: either a materialized list or a lazy generator.
pub enum OpSource {
    /// Pre-built op list with a cursor. Used by tests, validation fixtures
    /// and the equivalence suite; also what [`JobSpec::from_programs`]
    /// produces.
    Materialized { ops: Vec<Op>, pos: usize },
    /// A lazy generator; ops are produced on demand. `peeked` holds the
    /// one-op lookahead [`OpSource::peek_op`] may have pulled from the
    /// generator before the engine consumed it.
    Streamed {
        p: Box<dyn Program>,
        peeked: Option<Op>,
    },
    /// A [`CyclicProgram`] held directly (no boxing, no virtual dispatch).
    /// The engine pulls ops from these on every scheduler step; going
    /// through the enum lets `next_op`/`peek_op` inline down to an indexed
    /// read of the cached segment buffers.
    Cyclic(CyclicProgram),
}

impl OpSource {
    /// Wrap a pre-built op list.
    pub fn materialized(ops: Vec<Op>) -> Self {
        OpSource::Materialized { ops, pos: 0 }
    }

    /// Wrap a lazy generator.
    pub fn streamed(p: impl Program + 'static) -> Self {
        OpSource::Streamed {
            p: Box::new(p),
            peeked: None,
        }
    }

    /// Wrap a [`CyclicProgram`] without boxing it.
    pub fn cyclic(p: CyclicProgram) -> Self {
        OpSource::Cyclic(p)
    }

    /// Pull the next op.
    pub fn next_op(&mut self) -> Option<Op> {
        match self {
            OpSource::Materialized { ops, pos } => {
                let op = ops.get(*pos).cloned()?;
                *pos += 1;
                Some(op)
            }
            OpSource::Streamed { p, peeked } => peeked.take().or_else(|| p.next_op()),
            OpSource::Cyclic(p) => p.advance(),
        }
    }

    /// Look at the next op without consuming it. The engine's compute-op
    /// fusion uses this to decide whether a run of `Compute` ops
    /// continues; the returned reference observes exactly the op the next
    /// [`OpSource::next_op`] will yield.
    pub fn peek_op(&mut self) -> Option<&Op> {
        match self {
            OpSource::Materialized { ops, pos } => ops.get(*pos),
            OpSource::Streamed { p, peeked } => {
                if peeked.is_none() {
                    *peeked = p.next_op();
                }
                peeked.as_ref()
            }
            OpSource::Cyclic(p) => p.peek(),
        }
    }

    /// Reset to the beginning.
    pub fn rewind(&mut self) {
        match self {
            OpSource::Materialized { pos, .. } => *pos = 0,
            OpSource::Streamed { p, peeked } => {
                *peeked = None;
                p.rewind();
            }
            OpSource::Cyclic(p) => Program::rewind(p),
        }
    }

    /// Whether this source generates ops lazily.
    pub fn is_streamed(&self) -> bool {
        !matches!(self, OpSource::Materialized { .. })
    }

    /// Drain the remaining ops into a `Vec` and rewind.
    fn drain_to_vec(&mut self) -> Vec<Op> {
        let mut out = Vec::new();
        while let Some(op) = self.next_op() {
            out.push(op);
        }
        self.rewind();
        out
    }
}

impl std::fmt::Debug for OpSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpSource::Materialized { ops, pos } => f
                .debug_struct("Materialized")
                .field("len", &ops.len())
                .field("pos", pos)
                .finish(),
            OpSource::Streamed { .. } => f.write_str("Streamed(..)"),
            OpSource::Cyclic(..) => f.write_str("Cyclic(..)"),
        }
    }
}

/// Job-wide metadata, separate from the op streams. The profiling layers
/// (`sim-ipm`) consume only this — they never need the ops themselves.
/// The name is an `Arc<str>` so results and reports share it by refcount
/// instead of re-allocating a `String` per run.
#[derive(Debug, Clone)]
pub struct JobMeta {
    /// Workload name for reports ("cg.B", "metum.n320l70", ...).
    pub name: std::sync::Arc<str>,
    /// Number of ranks.
    pub np: usize,
    /// Names of profiling sections, indexed by [`SectionId`].
    pub section_names: Vec<&'static str>,
}

/// A complete job: metadata plus one op source per rank.
#[derive(Debug)]
pub struct JobSpec {
    pub meta: JobMeta,
    /// `sources[r]` is rank `r`'s op source.
    pub sources: Vec<OpSource>,
    /// Whether [`JobSpec::validate`] has already succeeded. Programs are
    /// deterministic (rewind reproduces the same op sequence), so a job
    /// that validated once stays valid across repeated runs — re-walking
    /// every streamed trace per run would double the generation cost of
    /// the paper's min-of-N methodology for nothing.
    validated: bool,
}

impl JobSpec {
    /// Build a job from materialized per-rank op lists (tests, fixtures,
    /// equivalence twins).
    pub fn from_programs(
        name: impl Into<std::sync::Arc<str>>,
        programs: Vec<Vec<Op>>,
        section_names: Vec<&'static str>,
    ) -> Self {
        let np = programs.len();
        JobSpec {
            meta: JobMeta {
                name: name.into(),
                np,
                section_names,
            },
            sources: programs.into_iter().map(OpSource::materialized).collect(),
            validated: false,
        }
    }

    /// Build a job from lazy per-rank sources (the default path for
    /// workload builders).
    pub fn from_sources(
        name: impl Into<std::sync::Arc<str>>,
        sources: Vec<OpSource>,
        section_names: Vec<&'static str>,
    ) -> Self {
        let np = sources.len();
        JobSpec {
            meta: JobMeta {
                name: name.into(),
                np,
                section_names,
            },
            sources,
            validated: false,
        }
    }

    /// Number of ranks.
    pub fn np(&self) -> usize {
        self.meta.np
    }

    /// Rewind every rank's source to the start of its program.
    pub fn rewind(&mut self) {
        for s in &mut self.sources {
            s.rewind();
        }
    }

    /// Whether every rank's source is lazy (no full trace in memory).
    pub fn is_fully_streamed(&self) -> bool {
        self.sources.iter().all(|s| s.is_streamed())
    }

    /// Total ops across all ranks, counted by streaming through every
    /// source in O(1) extra memory (sources are rewound afterwards).
    pub fn total_ops(&mut self) -> u64 {
        let mut n = 0u64;
        for s in &mut self.sources {
            s.rewind();
            while s.next_op().is_some() {
                n += 1;
            }
            s.rewind();
        }
        n
    }

    /// Materialize rank `r`'s program into a `Vec` (rewinds the source).
    /// For tests that inspect op structure; O(rank ops) memory.
    pub fn materialize_rank(&mut self, r: usize) -> Vec<Op> {
        self.sources[r].rewind();
        self.sources[r].drain_to_vec()
    }

    /// Materialize every rank's program (rewinds all sources). Used by the
    /// streamed-vs-materialized equivalence suite; O(total ops) memory —
    /// exactly the cost the streaming path avoids.
    pub fn materialized_copy(&mut self) -> Vec<Vec<Op>> {
        self.rewind();
        self.sources.iter_mut().map(|s| s.drain_to_vec()).collect()
    }

    /// Validate structural well-formedness:
    /// * every `Send` has a matching `Recv` (and vice versa) per channel,
    /// * every `Exchange` is mirrored by the partner with swapped sizes,
    /// * all ranks issue the same number of collectives, in the same kinds,
    /// * section enters/exits balance per rank,
    /// * targets are in range.
    ///
    /// Validation *streams*: each rank's source is walked op-by-op and
    /// rewound; no rank's program is ever materialized. Memory is bounded
    /// by the number of distinct channels and collective sequences, not by
    /// trace length.
    pub fn validate(&mut self) -> Result<(), String> {
        if self.validated {
            return Ok(());
        }
        use std::collections::HashMap;
        let np = self.meta.np as u32;
        let n_sections = self.meta.section_names.len();
        let mut sends: HashMap<(u32, u32, Tag), usize> = HashMap::new();
        let mut recvs: HashMap<(u32, u32, Tag), usize> = HashMap::new();
        let mut exchanges: HashMap<(u32, u32, Tag), i64> = HashMap::new();
        let mut coll_seqs: Vec<Vec<(&'static str, Group, &'static str)>> =
            Vec::with_capacity(self.sources.len());
        for (r, source) in self.sources.iter_mut().enumerate() {
            let r = r as u32;
            let mut colls: Vec<(&str, Group, &str)> = Vec::new();
            let mut depth: i32 = 0;
            let mut open_reqs: std::collections::HashSet<u32> = Default::default();
            source.rewind();
            while let Some(op) = source.next_op() {
                match &op {
                    Op::Isend { to, tag, req, .. } => {
                        if *to >= np {
                            return Err(format!("rank {r}: isend to out-of-range rank {to}"));
                        }
                        if *to == r {
                            return Err(format!("rank {r}: isend to self"));
                        }
                        if !open_reqs.insert(*req) {
                            return Err(format!("rank {r}: request {req} reused before wait"));
                        }
                        *sends.entry((r, *to, *tag)).or_default() += 1;
                    }
                    Op::Irecv { from, tag, req, .. } => {
                        if *from >= np {
                            return Err(format!("rank {r}: irecv from out-of-range rank {from}"));
                        }
                        if !open_reqs.insert(*req) {
                            return Err(format!("rank {r}: request {req} reused before wait"));
                        }
                        *recvs.entry((*from, r, *tag)).or_default() += 1;
                    }
                    Op::Wait { req } => {
                        if !open_reqs.remove(req) {
                            return Err(format!("rank {r}: wait on unknown request {req}"));
                        }
                    }
                    Op::Send { to, tag, .. } => {
                        if *to >= np {
                            return Err(format!("rank {r}: send to out-of-range rank {to}"));
                        }
                        if *to == r {
                            return Err(format!("rank {r}: send to self"));
                        }
                        *sends.entry((r, *to, *tag)).or_default() += 1;
                    }
                    Op::Recv { from, tag, .. } => {
                        if *from >= np {
                            return Err(format!("rank {r}: recv from out-of-range rank {from}"));
                        }
                        *recvs.entry((*from, r, *tag)).or_default() += 1;
                    }
                    Op::Exchange { partner, tag, .. } => {
                        if *partner >= np {
                            return Err(format!("rank {r}: exchange with out-of-range {partner}"));
                        }
                        if *partner == r {
                            return Err(format!("rank {r}: exchange with self"));
                        }
                        let key = (r.min(*partner), r.max(*partner), *tag);
                        *exchanges.entry(key).or_default() += if r < *partner { 1 } else { -1 };
                    }
                    Op::Coll(c) => colls.push(("world", Group::World, c.name())),
                    // A checkpoint is a world-synchronized cut: validating
                    // it as a world "collective" enforces that every rank
                    // issues the same number of checkpoints in the same
                    // order relative to real collectives.
                    Op::Checkpoint { .. } => colls.push(("world", Group::World, "checkpoint")),
                    // Verification cuts are world-synchronized for the same
                    // reason.
                    Op::Verify { .. } => colls.push(("world", Group::World, "verify")),
                    Op::GroupColl { group, op } => {
                        if !group.contains(r, np as usize) {
                            return Err(format!(
                                "rank {r}: group collective on a group it is not in"
                            ));
                        }
                        if let Group::Strided {
                            first,
                            count,
                            stride,
                        } = group
                        {
                            let last = *first as u64
                                + (count.saturating_sub(1) as u64) * (*stride).max(1) as u64;
                            if last >= np as u64 {
                                return Err(format!(
                                    "rank {r}: group extends past rank {last} >= np {np}"
                                ));
                            }
                        }
                        colls.push(("group", *group, op.name()));
                    }
                    Op::SectionEnter(id) => {
                        if *id as usize >= n_sections {
                            return Err(format!("rank {r}: unknown section id {id}"));
                        }
                        depth += 1;
                    }
                    Op::SectionExit(_) => {
                        depth -= 1;
                        if depth < 0 {
                            return Err(format!("rank {r}: section exit without enter"));
                        }
                    }
                    Op::Compute { flops, bytes } => {
                        if !flops.is_finite() || !bytes.is_finite() || *flops < 0.0 || *bytes < 0.0
                        {
                            return Err(format!("rank {r}: bad compute chunk {flops}/{bytes}"));
                        }
                    }
                    Op::FileRead { .. } | Op::FileWrite { .. } => {}
                }
            }
            source.rewind();
            if depth != 0 {
                return Err(format!("rank {r}: {depth} unclosed sections"));
            }
            if !open_reqs.is_empty() {
                return Err(format!(
                    "rank {r}: {} request(s) never waited on",
                    open_reqs.len()
                ));
            }
            coll_seqs.push(colls);
        }
        for (key, n) in &sends {
            let m = recvs.get(key).copied().unwrap_or(0);
            if *n != m {
                return Err(format!("channel {key:?}: {n} sends vs {m} recvs"));
            }
        }
        for (key, m) in &recvs {
            if !sends.contains_key(key) {
                return Err(format!("channel {key:?}: {m} recvs with no send"));
            }
        }
        for (key, bal) in &exchanges {
            if *bal != 0 {
                return Err(format!("exchange {key:?}: unbalanced by {bal}"));
            }
        }
        // Per communicator, every member must issue the same sequence.
        use std::collections::HashMap as Map;
        let mut by_group: Map<Group, Vec<(u32, Vec<&str>)>> = Map::new();
        for (r, seq) in coll_seqs.iter().enumerate() {
            let mut per_rank: Map<Group, Vec<&str>> = Map::new();
            for (_, g, name) in seq.iter() {
                per_rank.entry(*g).or_default().push(name);
            }
            for (g, names) in per_rank {
                by_group.entry(g).or_default().push((r as u32, names));
            }
        }
        for (g, seqs) in &by_group {
            let expected_members = g.size(self.meta.np);
            if seqs.len() != expected_members {
                return Err(format!(
                    "group {g:?}: {} rank(s) issued its collectives but it has {expected_members} members",
                    seqs.len()
                ));
            }
            for (r, names) in &seqs[1..] {
                if *names != seqs[0].1 {
                    return Err(format!(
                        "rank {r} issues a different collective sequence on {g:?} than rank {}",
                        seqs[0].0
                    ));
                }
            }
        }
        self.validated = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(programs: Vec<Vec<Op>>) -> JobSpec {
        JobSpec::from_programs("test", programs, vec!["main"])
    }

    #[test]
    fn validate_accepts_matched_pt2pt() {
        let mut j = job(vec![
            vec![Op::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            }],
            vec![Op::Recv {
                from: 0,
                bytes: 8,
                tag: 0,
            }],
        ]);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unmatched_send() {
        let mut j = job(vec![
            vec![Op::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            }],
            vec![],
        ]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_recv_without_send() {
        let mut j = job(vec![
            vec![],
            vec![Op::Recv {
                from: 0,
                bytes: 8,
                tag: 0,
            }],
        ]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_send_and_out_of_range() {
        let mut j = job(vec![vec![Op::Send {
            to: 0,
            bytes: 8,
            tag: 0,
        }]]);
        assert!(j.validate().is_err());
        let mut j = job(vec![vec![Op::Send {
            to: 9,
            bytes: 8,
            tag: 0,
        }]]);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_requires_mirrored_exchange() {
        let mut ok = job(vec![
            vec![Op::Exchange {
                partner: 1,
                send_bytes: 8,
                recv_bytes: 16,
                tag: 7,
            }],
            vec![Op::Exchange {
                partner: 0,
                send_bytes: 16,
                recv_bytes: 8,
                tag: 7,
            }],
        ]);
        assert!(ok.validate().is_ok());
        let mut bad = job(vec![
            vec![Op::Exchange {
                partner: 1,
                send_bytes: 8,
                recv_bytes: 8,
                tag: 7,
            }],
            vec![],
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_requires_identical_collective_sequences() {
        let mut ok = job(vec![
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
        ]);
        assert!(ok.validate().is_ok());
        let mut bad = job(vec![
            vec![Op::Coll(CollOp::Allreduce { bytes: 8 })],
            vec![Op::Coll(CollOp::Barrier)],
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_requires_balanced_sections() {
        let mut bad = job(vec![vec![Op::SectionEnter(0)]]);
        assert!(bad.validate().is_err());
        let mut bad2 = job(vec![vec![Op::SectionExit(0)]]);
        assert!(bad2.validate().is_err());
        let mut ok = job(vec![vec![Op::SectionEnter(0), Op::SectionExit(0)]]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn alltoall_bytes_per_rank_counts_peers() {
        let c = CollOp::Alltoall {
            bytes_per_pair: 100,
        };
        assert_eq!(c.bytes_per_rank(5), 400);
        assert_eq!(CollOp::Barrier.bytes_per_rank(5), 0);
    }

    #[test]
    fn group_members_iterate_without_allocating() {
        let g = Group::Strided {
            first: 2,
            count: 3,
            stride: 4,
        };
        assert_eq!(g.members(16).collect::<Vec<_>>(), vec![2, 6, 10]);
        assert_eq!(Group::World.members(3).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn block_program_yields_blocks_in_order_and_rewinds() {
        let mut p = BlockProgram::new(|k, buf: &mut Vec<Op>| {
            if k >= 3 {
                return false;
            }
            buf.push(Op::Compute {
                flops: k as f64,
                bytes: 0.0,
            });
            if k == 1 {
                buf.push(Op::Coll(CollOp::Barrier));
            }
            true
        });
        let first: Vec<Op> = std::iter::from_fn(|| p.next_op()).collect();
        assert_eq!(first.len(), 4);
        assert_eq!(first[2], Op::Coll(CollOp::Barrier));
        p.rewind();
        let second: Vec<Op> = std::iter::from_fn(|| p.next_op()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn block_program_skips_empty_blocks() {
        let mut p = BlockProgram::new(|k, buf: &mut Vec<Op>| {
            if k >= 4 {
                return false;
            }
            if k == 2 {
                buf.push(Op::Coll(CollOp::Barrier));
            }
            true
        });
        let ops: Vec<Op> = std::iter::from_fn(|| p.next_op()).collect();
        assert_eq!(ops, vec![Op::Coll(CollOp::Barrier)]);
    }

    #[test]
    fn peek_is_transparent_on_both_source_kinds() {
        let ops = vec![
            Op::Compute {
                flops: 1.0,
                bytes: 0.0,
            },
            Op::Coll(CollOp::Barrier),
            Op::Compute {
                flops: 2.0,
                bytes: 0.0,
            },
        ];
        let mk_streamed = || {
            let blocks = [
                vec![
                    Op::Compute {
                        flops: 1.0,
                        bytes: 0.0,
                    },
                    Op::Coll(CollOp::Barrier),
                ],
                vec![Op::Compute {
                    flops: 2.0,
                    bytes: 0.0,
                }],
            ];
            OpSource::streamed(BlockProgram::new(move |k, buf: &mut Vec<Op>| {
                if k >= blocks.len() {
                    return false;
                }
                buf.extend(blocks[k].iter().cloned());
                true
            }))
        };
        for mut src in [OpSource::materialized(ops.clone()), mk_streamed()] {
            // Repeated peeks are idempotent and never advance the cursor.
            assert_eq!(src.peek_op(), Some(&ops[0]));
            assert_eq!(src.peek_op(), Some(&ops[0]));
            for expect in &ops {
                assert_eq!(src.peek_op(), Some(expect));
                assert_eq!(src.next_op().as_ref(), Some(expect));
            }
            assert_eq!(src.peek_op(), None);
            assert_eq!(src.next_op(), None);
            // Rewind discards any buffered lookahead.
            src.rewind();
            assert_eq!(src.next_op().as_ref(), Some(&ops[0]));
            src.rewind();
            assert_eq!(src.peek_op(), Some(&ops[0]));
            let drained: Vec<Op> = std::iter::from_fn(|| src.next_op()).collect();
            assert_eq!(drained, ops);
        }
    }

    #[test]
    fn streamed_and_materialized_sources_agree() {
        let make = || {
            OpSource::streamed(BlockProgram::new(|k, buf: &mut Vec<Op>| {
                if k >= 5 {
                    return false;
                }
                buf.push(Op::Compute {
                    flops: 1.0 + k as f64,
                    bytes: 0.0,
                });
                true
            }))
        };
        let mut streamed = make();
        let ops = streamed.drain_to_vec();
        let mut mat = OpSource::materialized(ops.clone());
        streamed.rewind();
        for expect in &ops {
            assert_eq!(streamed.next_op().as_ref(), Some(expect));
            assert_eq!(mat.next_op().as_ref(), Some(expect));
        }
        assert_eq!(streamed.next_op(), None);
        assert_eq!(mat.next_op(), None);
    }

    #[test]
    fn job_counts_ops_without_materializing() {
        let sources = (0..4)
            .map(|_| {
                OpSource::streamed(BlockProgram::new(|k, buf: &mut Vec<Op>| {
                    if k >= 10 {
                        return false;
                    }
                    buf.push(Op::Compute {
                        flops: 1.0,
                        bytes: 0.0,
                    });
                    buf.push(Op::Coll(CollOp::Barrier));
                    true
                }))
            })
            .collect();
        let mut job = JobSpec::from_sources("count", sources, vec![]);
        assert!(job.is_fully_streamed());
        assert_eq!(job.total_ops(), 4 * 10 * 2);
        // Counting must not consume the job.
        assert_eq!(job.total_ops(), 4 * 10 * 2);
    }
}
