//! The NPB pseudo-random number generator.
//!
//! All NAS Parallel Benchmarks generate their input data with the same
//! linear congruential generator: `x_{k+1} = a * x_k mod 2^46` with
//! `a = 5^13` — see the NPB report's `randlc` routine. The generator's
//! `O(log k)` skip-ahead is what lets the EP benchmark be embarrassingly
//! parallel: every rank jumps straight to its own segment of the stream.

/// Modulus 2^46 as used by `randlc`.
const M46: u64 = 1 << 46;
const MASK46: u64 = M46 - 1;

/// Default multiplier `a = 5^13`.
pub const A: u64 = 1220703125; // 5^13

/// Default seed used by the EP benchmark.
pub const EP_SEED: u64 = 271828183;

/// The NPB linear congruential generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpbRng {
    x: u64,
}

impl NpbRng {
    /// Start the stream at `seed` (must be odd and < 2^46).
    pub fn new(seed: u64) -> NpbRng {
        assert!(seed % 2 == 1, "NPB RNG seeds must be odd");
        NpbRng { x: seed & MASK46 }
    }

    /// Next value in `(0, 1)` — the `randlc` step.
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul46(self.x, A);
        self.x as f64 / M46 as f64
    }

    /// Skip the stream ahead by `k` steps in `O(log k)` multiplications —
    /// the trick EP uses to give rank `r` its own disjoint block.
    pub fn skip(&mut self, mut k: u64) {
        let mut a = A;
        while k > 0 {
            if k & 1 == 1 {
                self.x = mul46(self.x, a);
            }
            a = mul46(a, a);
            k >>= 1;
        }
    }

    /// Raw state (for tests).
    pub fn state(&self) -> u64 {
        self.x
    }
}

/// `(a * b) mod 2^46` without overflow (u128 intermediate).
fn mul46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_unit_interval() {
        let mut r = NpbRng::new(EP_SEED);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn skip_matches_sequential() {
        let mut seq = NpbRng::new(EP_SEED);
        for _ in 0..12_345 {
            seq.next_f64();
        }
        let mut jump = NpbRng::new(EP_SEED);
        jump.skip(12_345);
        assert_eq!(seq.state(), jump.state());
    }

    #[test]
    fn skip_zero_is_identity() {
        let mut r = NpbRng::new(EP_SEED);
        let before = r.state();
        r.skip(0);
        assert_eq!(r.state(), before);
    }

    #[test]
    fn disjoint_blocks_compose() {
        // Rank blocks: skipping r*k then drawing k values equals drawing
        // (r+1)*k values sequentially.
        let k = 1000u64;
        let mut seq = NpbRng::new(EP_SEED);
        for _ in 0..3 * k {
            seq.next_f64();
        }
        let mut blocked = NpbRng::new(EP_SEED);
        blocked.skip(2 * k);
        for _ in 0..k {
            blocked.next_f64();
        }
        assert_eq!(seq.state(), blocked.state());
    }

    #[test]
    fn mean_is_half() {
        let mut r = NpbRng::new(EP_SEED);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
