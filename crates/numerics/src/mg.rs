//! Geometric multigrid V-cycle on the 3-D Poisson equation.
//!
//! The NPB MG kernel performs V-cycles on a 256³ grid (class B) with
//! halo exchanges at every level; per level the message size shrinks 4×.
//! This real (serial) V-cycle backs the examples and the flop formula of the
//! MG workload model.

/// A cubic grid of edge `n` (must be `2^k + 1` for multigrid, so vertices
/// align across levels) with Dirichlet zero boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    pub n: usize,
    pub data: Vec<f64>,
}

impl Grid3 {
    pub fn zeros(n: usize) -> Grid3 {
        Grid3 {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(i * self.n + j) * self.n + k]
    }

    /// L2 norm of the field.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Red-black Gauss–Seidel smoothing sweeps for `-∆u = f` (7-point stencil,
/// h = 1/n). RBGS is the standard multigrid smoother for Poisson: its
/// smoothing factor (~0.25) is far better than damped Jacobi's.
pub fn smooth(u: &mut Grid3, f: &Grid3, sweeps: usize) {
    let n = u.n;
    let h2 = 1.0 / (n as f64 * n as f64);
    for _ in 0..sweeps {
        for colour in 0..2usize {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    for k in 1..n - 1 {
                        if (i + j + k) % 2 != colour {
                            continue;
                        }
                        let s = u.at(i - 1, j, k)
                            + u.at(i + 1, j, k)
                            + u.at(i, j - 1, k)
                            + u.at(i, j + 1, k)
                            + u.at(i, j, k - 1)
                            + u.at(i, j, k + 1);
                        u.data[(i * n + j) * n + k] = (s + h2 * f.at(i, j, k)) / 6.0;
                    }
                }
            }
        }
    }
}

/// Residual `r = f + ∆u` (for `-∆u = f`).
pub fn residual(u: &Grid3, f: &Grid3, r: &mut Grid3) {
    let n = u.n;
    let inv_h2 = (n as f64) * (n as f64);
    for v in r.data.iter_mut() {
        *v = 0.0;
    }
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                let lap = (u.at(i - 1, j, k)
                    + u.at(i + 1, j, k)
                    + u.at(i, j - 1, k)
                    + u.at(i, j + 1, k)
                    + u.at(i, j, k - 1)
                    + u.at(i, j, k + 1)
                    - 6.0 * u.at(i, j, k))
                    * inv_h2;
                r.data[u.idx(i, j, k)] = f.at(i, j, k) + lap;
            }
        }
    }
}

/// Restrict a fine-grid field to the next coarser grid by 3-D full
/// weighting (center 8/64, faces 4/64, edges 2/64, corners 1/64).
pub fn restrict(fine: &Grid3) -> Grid3 {
    debug_assert!((fine.n - 1).is_power_of_two(), "grid must be 2^k + 1");
    let nc = (fine.n - 1) / 2 + 1;
    let mut coarse = Grid3::zeros(nc);
    for i in 1..nc - 1 {
        for j in 1..nc - 1 {
            for k in 1..nc - 1 {
                let (fi, fj, fk) = (2 * i, 2 * j, 2 * k);
                let mut acc = 0.0;
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            let w = (2 - di.abs()) * (2 - dj.abs()) * (2 - dk.abs());
                            acc += w as f64
                                * fine.at(
                                    (fi as i64 + di) as usize,
                                    (fj as i64 + dj) as usize,
                                    (fk as i64 + dk) as usize,
                                );
                        }
                    }
                }
                let id = coarse.idx(i, j, k);
                coarse.data[id] = acc / 64.0;
            }
        }
    }
    coarse
}

/// Prolongate a coarse correction to the fine grid by trilinear
/// interpolation (fine node `2I` coincides with coarse node `I`; odd nodes
/// average their coarse neighbours).
pub fn prolongate_add(coarse: &Grid3, fine: &mut Grid3) {
    let n = fine.n;
    let nc = coarse.n;
    // Per-dimension interpolation stencil: (index0, weight0, index1, weight1).
    let stencil = |i: usize| -> (usize, f64, usize, f64) {
        if i.is_multiple_of(2) {
            (i / 2, 1.0, i / 2, 0.0)
        } else {
            ((i / 2).min(nc - 1), 0.5, (i / 2 + 1).min(nc - 1), 0.5)
        }
    };
    for i in 1..n - 1 {
        let (i0, wi0, i1, wi1) = stencil(i);
        for j in 1..n - 1 {
            let (j0, wj0, j1, wj1) = stencil(j);
            for k in 1..n - 1 {
                let (k0, wk0, k1, wk1) = stencil(k);
                let mut c = 0.0;
                for (ii, wi) in [(i0, wi0), (i1, wi1)] {
                    if wi == 0.0 {
                        continue;
                    }
                    for (jj, wj) in [(j0, wj0), (j1, wj1)] {
                        if wj == 0.0 {
                            continue;
                        }
                        for (kk, wk) in [(k0, wk0), (k1, wk1)] {
                            if wk == 0.0 {
                                continue;
                            }
                            c += wi * wj * wk * coarse.at(ii, jj, kk);
                        }
                    }
                }
                fine.data[(i * n + j) * n + k] += c;
            }
        }
    }
}

/// One multigrid V-cycle for `-∆u = f`. Returns the post-cycle residual
/// norm.
pub fn v_cycle(u: &mut Grid3, f: &Grid3, pre: usize, post: usize) -> f64 {
    if u.n <= 5 {
        smooth(u, f, 30);
        let mut r = Grid3::zeros(u.n);
        residual(u, f, &mut r);
        return r.norm();
    }
    smooth(u, f, pre);
    let mut r = Grid3::zeros(u.n);
    residual(u, f, &mut r);
    let rc = restrict(&r);
    let mut ec = Grid3::zeros(rc.n);
    v_cycle(&mut ec, &rc, pre, post);
    prolongate_add(&ec, u);
    smooth(u, f, post);
    residual(u, f, &mut r);
    r.norm()
}

/// Flops per V-cycle on an `n³` grid: smoothing + residual + transfer at
/// each level, each ~10 flops/point, with levels shrinking 8×. The geometric
/// series sum is `~(8/7) * work(finest)`.
pub fn v_cycle_flops(n: usize, pre: usize, post: usize) -> f64 {
    let pts = (n * n * n) as f64;
    let per_point = 10.0 * (pre + post + 1) as f64 + 4.0;
    per_point * pts * 8.0 / 7.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Grid3, Grid3) {
        let mut f = Grid3::zeros(n);
        // A smooth source concentrated mid-domain.
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    let x = i as f64 / n as f64 - 0.5;
                    let y = j as f64 / n as f64 - 0.5;
                    let z = k as f64 / n as f64 - 0.5;
                    f.data[(i * n + j) * n + k] = (-20.0 * (x * x + y * y + z * z)).exp();
                }
            }
        }
        (Grid3::zeros(n), f)
    }

    #[test]
    fn smoothing_reduces_residual() {
        let (mut u, f) = setup(17);
        let mut r = Grid3::zeros(17);
        residual(&u, &f, &mut r);
        let before = r.norm();
        smooth(&mut u, &f, 20);
        residual(&u, &f, &mut r);
        assert!(r.norm() < before, "{} -> {}", before, r.norm());
    }

    #[test]
    fn v_cycle_converges_fast() {
        let (mut u, f) = setup(33);
        let mut r = Grid3::zeros(33);
        residual(&u, &f, &mut r);
        let r0 = r.norm();
        let r1 = v_cycle(&mut u, &f, 2, 2);
        let r2 = v_cycle(&mut u, &f, 2, 2);
        assert!(r1 < 0.5 * r0, "first cycle {r0} -> {r1}");
        assert!(r2 < r1, "second cycle {r1} -> {r2}");
    }

    #[test]
    fn restriction_halves_grid() {
        let g = Grid3::zeros(17);
        assert_eq!(restrict(&g).n, 9);
    }

    #[test]
    fn flop_formula_scales_cubically() {
        let f32_ = v_cycle_flops(32, 2, 2);
        let f64_ = v_cycle_flops(64, 2, 2);
        assert!((f64_ / f32_ - 8.0).abs() < 0.01);
    }
}
