//! Tridiagonal (Thomas) solves and ADI sweeps — the real computation
//! behind the NPB SP and BT pseudo-applications.
//!
//! SP factorises scalar pentadiagonal systems and BT block tridiagonal
//! ones along each spatial dimension per timestep (the "ADI" scheme whose
//! per-dimension sweeps are the ring-shift communications the workload
//! model issues). The serial kernels here pin down the per-line flop
//! counts and let the examples run an actual 2-D ADI heat solve.

/// Solve a tridiagonal system `a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i]`
/// in place by the Thomas algorithm. `a[0]` and `c[n-1]` are ignored.
/// Returns the solution in `d`. Panics if a pivot vanishes (the callers'
/// diagonally dominant systems never do).
pub fn thomas_solve(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = b.len();
    assert!(a.len() == n && c.len() == n && d.len() == n);
    if n == 0 {
        return;
    }
    let mut cp = vec![0.0; n];
    let mut bp = b[0];
    assert!(bp.abs() > f64::MIN_POSITIVE, "zero pivot at row 0");
    cp[0] = c[0] / bp;
    d[0] /= bp;
    for i in 1..n {
        bp = b[i] - a[i] * cp[i - 1];
        assert!(bp.abs() > f64::MIN_POSITIVE, "zero pivot at row {i}");
        cp[i] = c[i] / bp;
        d[i] = (d[i] - a[i] * d[i - 1]) / bp;
    }
    for i in (0..n - 1).rev() {
        d[i] -= cp[i] * d[i + 1];
    }
}

/// Flops of one Thomas solve of length `n` (~8n: 5n forward, 2n backward,
/// plus the first-row normalisation).
pub fn thomas_flops(n: usize) -> f64 {
    8.0 * n as f64
}

/// One ADI (alternating-direction implicit) timestep of the 2-D heat
/// equation `u_t = u_xx + u_yy` on an `n` × `n` unit grid with Dirichlet
/// zero boundaries: an implicit x-sweep then an implicit y-sweep, each a
/// batch of tridiagonal solves — exactly the sweep structure SP/BT
/// distribute across the processor grid.
pub fn adi_heat_step(u: &mut [f64], n: usize, dt: f64) {
    assert_eq!(u.len(), n * n);
    let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
    let r = dt / (2.0 * h2);
    let a = vec![-r; n];
    let b = vec![1.0 + 2.0 * r; n];
    let c = vec![-r; n];
    let mut rhs = vec![0.0; n];

    // X sweep: for each row, (I - r Dxx) u* = (I + r Dyy) u.
    let mut half = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            let up = if j + 1 < n { u[(j + 1) * n + i] } else { 0.0 };
            let dn = if j > 0 { u[(j - 1) * n + i] } else { 0.0 };
            rhs[i] = u[j * n + i] + r * (up - 2.0 * u[j * n + i] + dn);
        }
        thomas_solve(&a, &b, &c, &mut rhs);
        half[j * n..(j + 1) * n].copy_from_slice(&rhs);
    }
    // Y sweep: (I - r Dyy) u' = (I + r Dxx) u*.
    for i in 0..n {
        for j in 0..n {
            let rt = if i + 1 < n { half[j * n + i + 1] } else { 0.0 };
            let lt = if i > 0 { half[j * n + i - 1] } else { 0.0 };
            rhs[j] = half[j * n + i] + r * (rt - 2.0 * half[j * n + i] + lt);
        }
        thomas_solve(&a, &b, &c, &mut rhs);
        for j in 0..n {
            u[j * n + i] = rhs[j];
        }
    }
}

/// Flops of one ADI step on an `n` × `n` grid: 2n line solves plus the two
/// explicit half-updates (~5 flops/point each).
pub fn adi_step_flops(n: usize) -> f64 {
    2.0 * n as f64 * thomas_flops(n) + 2.0 * 5.0 * (n * n) as f64
}

/// Solve a scalar pentadiagonal system by banded Gaussian elimination
/// without pivoting — the system class the NPB SP benchmark factorises
/// along every grid line. Bands: `e` (i-2), `a` (i-1), `b` (diagonal),
/// `c` (i+1), `f` (i+2); out-of-range band entries are ignored. The
/// solution replaces `d`. The callers' diagonally dominant systems need no
/// pivoting.
pub fn penta_solve(e: &[f64], a: &[f64], b: &[f64], c: &[f64], f: &[f64], d: &mut [f64]) {
    let n = b.len();
    assert!(e.len() == n && a.len() == n && c.len() == n && f.len() == n && d.len() == n);
    if n == 0 {
        return;
    }
    // Band storage: m[i][2 + off] is the coefficient of x[i + off],
    // off in -2..=2.
    let mut m = vec![[0.0f64; 5]; n];
    for i in 0..n {
        if i >= 2 {
            m[i][0] = e[i];
        }
        if i >= 1 {
            m[i][1] = a[i];
        }
        m[i][2] = b[i];
        if i + 1 < n {
            m[i][3] = c[i];
        }
        if i + 2 < n {
            m[i][4] = f[i];
        }
    }
    // Forward elimination: row i clears the two entries below its diagonal.
    for i in 0..n {
        let piv = m[i][2];
        assert!(piv.abs() > f64::MIN_POSITIVE, "zero pivot at row {i}");
        for k in 1..=2usize {
            if i + k >= n {
                continue;
            }
            let factor = m[i + k][2 - k] / piv;
            if factor != 0.0 {
                // Row i has entries at column offsets 0..=2 from i; in row
                // i+k those land at offsets (0..=2) - k.
                for off in 0..=2usize {
                    m[i + k][2 + off - k] -= factor * m[i][2 + off];
                }
                d[i + k] -= factor * d[i];
            }
            m[i + k][2 - k] = 0.0;
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut acc = d[i];
        for off in 1..=2usize {
            if i + off < n {
                acc -= m[i][2 + off] * d[i + off];
            }
        }
        d[i] = acc / m[i][2];
    }
}

/// Flops of one pentadiagonal solve of length `n` (~14n forward + 5n back).
pub fn penta_flops(n: usize) -> f64 {
    19.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_matches_known_solution() {
        // A small SPD system with a hand-checkable answer: solve against a
        // manufactured x by computing d = T x first.
        let n = 64;
        let a = vec![-1.0; n];
        let b = vec![3.0; n];
        let c = vec![-1.0; n];
        let xs: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut d = vec![0.0; n];
        for i in 0..n {
            d[i] = 3.0 * xs[i]
                - if i > 0 { xs[i - 1] } else { 0.0 }
                - if i + 1 < n { xs[i + 1] } else { 0.0 };
        }
        thomas_solve(&a, &b, &c, &mut d);
        for (got, want) in d.iter().zip(&xs) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn thomas_identity() {
        let n = 10;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let mut d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let want = d.clone();
        thomas_solve(&a, &b, &c, &mut d);
        assert_eq!(d, want);
    }

    #[test]
    fn adi_heat_decays_and_stays_bounded() {
        // Heat flow with zero boundaries: total energy strictly decays and
        // the field stays within its initial bounds (maximum principle).
        let n = 33;
        let mut u = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let x = (i + 1) as f64 / (n + 1) as f64;
                let y = (j + 1) as f64 / (n + 1) as f64;
                u[j * n + i] = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        let e0: f64 = u.iter().map(|v| v * v).sum();
        let mut last = e0;
        for _ in 0..5 {
            adi_heat_step(&mut u, n, 1e-4);
            let e: f64 = u.iter().map(|v| v * v).sum();
            assert!(e < last, "energy must decay: {last} -> {e}");
            last = e;
        }
        assert!(u.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn adi_matches_analytic_decay_rate() {
        // The (1,1) sine mode decays as exp(-2 pi^2 t); one small ADI step
        // must reproduce that to discretisation accuracy.
        let n = 65;
        let dt = 5e-5;
        let mut u = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let x = (i + 1) as f64 / (n + 1) as f64;
                let y = (j + 1) as f64 / (n + 1) as f64;
                u[j * n + i] = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        let before = u[(n / 2) * n + n / 2];
        adi_heat_step(&mut u, n, dt);
        let after = u[(n / 2) * n + n / 2];
        let analytic = (-2.0 * std::f64::consts::PI.powi(2) * dt).exp();
        let numeric = after / before;
        assert!(
            (numeric - analytic).abs() < 2e-3,
            "decay {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn penta_matches_manufactured_solution() {
        let n = 80;
        let e = vec![0.5; n];
        let a = vec![-1.5; n];
        let b = vec![6.0; n];
        let c = vec![-1.5; n];
        let f = vec![0.5; n];
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i * 29) % 11) as f64 / 11.0 - 0.5)
            .collect();
        // d = P x.
        let mut d = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i] * xs[i];
            if i >= 2 {
                acc += e[i] * xs[i - 2];
            }
            if i >= 1 {
                acc += a[i] * xs[i - 1];
            }
            if i + 1 < n {
                acc += c[i] * xs[i + 1];
            }
            if i + 2 < n {
                acc += f[i] * xs[i + 2];
            }
            d[i] = acc;
        }
        penta_solve(&e, &a, &b, &c, &f, &mut d);
        for (got, want) in d.iter().zip(&xs) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn penta_reduces_to_thomas_when_outer_bands_vanish() {
        let n = 40;
        let zero = vec![0.0; n];
        let a = vec![-1.0; n];
        let b = vec![3.0; n];
        let c = vec![-1.0; n];
        let mut d1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut d2 = d1.clone();
        thomas_solve(&a, &b, &c, &mut d1);
        penta_solve(&zero, &a, &b, &c, &zero, &mut d2);
        for (x, y) in d1.iter().zip(&d2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn penta_identity_and_empty() {
        let n = 6;
        let zero = vec![0.0; n];
        let one = vec![1.0; n];
        let mut d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let want = d.clone();
        penta_solve(&zero, &zero, &one, &zero, &zero, &mut d);
        assert_eq!(d, want);
        let mut empty: Vec<f64> = vec![];
        penta_solve(&[], &[], &[], &[], &[], &mut empty);
    }

    #[test]
    fn flop_formulas_scale() {
        assert_eq!(thomas_flops(100), 800.0);
        // ADI is O(n^2) per step.
        let r = adi_step_flops(128) / adi_step_flops(64);
        assert!((3.5..4.5).contains(&r));
    }
}
