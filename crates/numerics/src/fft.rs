//! Iterative radix-2 complex FFT.
//!
//! The NPB FT benchmark solves a 3-D PDE with forward/inverse FFTs whose
//! distributed transpose is the famous all-to-all. The real 1-D transform
//! here backs the examples and pins down the `5 n log2 n` flop formula the
//! FT workload model charges per pencil.

/// A complex number as a pair (re, im); kept as a plain tuple-struct to stay
/// dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    pub re: f64,
    pub im: f64,
}

impl C64 {
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place radix-2 DIT FFT. `data.len()` must be a power of two.
/// `inverse` selects the inverse transform (including the 1/n scaling).
pub fn fft(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length {n} not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.re *= inv_n;
            d.im *= inv_n;
        }
    }
}

/// The standard flop count of a radix-2 complex FFT of length `n`:
/// `5 n log2 n` — the constant the NPB FT documentation uses.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        5.0 * n as f64 * (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse(n: usize) -> Vec<C64> {
        let mut v = vec![C64::default(); n];
        v[0] = C64::new(1.0, 0.0);
        v
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut d = impulse(8);
        fft(&mut d, false);
        for c in &d {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 256;
        let mut d: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.1).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let orig = d.clone();
        fft(&mut d, false);
        fft(&mut d, true);
        for (a, b) in d.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let mut d: Vec<C64> = (0..n).map(|i| C64::new((i as f64).cos(), 0.0)).collect();
        let time_energy: f64 = d.iter().map(|c| c.norm_sqr()).sum();
        fft(&mut d, false);
        let freq_energy: f64 = d.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut d: Vec<C64> = (0..n)
            .map(|i| {
                let ph = 2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64;
                C64::new(ph.cos(), ph.sin())
            })
            .collect();
        fft(&mut d, false);
        for (i, c) in d.iter().enumerate() {
            let mag = c.norm_sqr().sqrt();
            if i == k {
                assert!((mag - n as f64).abs() < 1e-9, "bin {i} mag {mag}");
            } else {
                assert!(mag < 1e-9, "leak in bin {i}: {mag}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut d = vec![C64::default(); 12];
        fft(&mut d, false);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fft_flops(1), 0.0);
        assert!((fft_flops(8) - 5.0 * 8.0 * 3.0).abs() < 1e-12);
    }
}
