//! Conjugate-gradient solver with operation counting.
//!
//! Both heavyweight applications in the study spend most of their time in a
//! CG solve: Chaste's KSp section uses PETSc CG, and the NPB CG kernel is a
//! CG eigenvalue estimator. This real implementation backs the examples and
//! — through [`CgStats`] — validates the per-iteration flop/byte formulas
//! the workload models feed the simulator.

use crate::csr::vec_ops::{axpy, dot};
use crate::csr::Csr;

/// Outcome of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm ‖b − Ax‖₂.
    pub residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Total floating-point operations executed.
    pub flops: f64,
    /// Inner products computed (each is an allreduce in the parallel code —
    /// the 4-byte-allreduce count the paper highlights follows from this).
    pub dot_products: usize,
}

/// Solve `A x = b` by unpreconditioned CG.
///
/// `x` carries the initial guess in and the solution out.
pub fn cg_solve(a: &Csr, b: &[f64], x: &mut [f64], tol: f64, max_iter: usize) -> CgStats {
    let n = a.n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let spmv_flops = a.spmv_flops();

    let mut r = vec![0.0; n];
    let mut ap = vec![0.0; n];
    a.spmv(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    let mut flops = spmv_flops + 2.0 * n as f64 + 2.0 * n as f64;
    let mut dots = 1;
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let target = tol * b_norm;

    let mut it = 0;
    while it < max_iter && rr.sqrt() > target {
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        dots += 1;
        let alpha = rr / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        dots += 1;
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        // SpMV + 2 dots + 2 axpy + 1 xpby ≈ spmv + 10n flops.
        flops += spmv_flops + 10.0 * n as f64;
        it += 1;
    }
    CgStats {
        iterations: it,
        residual: rr.sqrt(),
        converged: rr.sqrt() <= target,
        flops,
        dot_products: dots,
    }
}

/// Analytic per-iteration flop count for a CG iteration on a matrix with
/// `nnz` stored entries and `n` unknowns — the formula the Chaste and NPB CG
/// workload models use.
pub fn cg_iter_flops(n: usize, nnz: usize) -> f64 {
    2.0 * nnz as f64 + 10.0 * n as f64
}

/// Analytic per-iteration memory traffic, bytes.
pub fn cg_iter_bytes(n: usize, nnz: usize) -> f64 {
    // SpMV streams the matrix once; the vector ops stream ~7 vectors.
    (nnz * 16 + 7 * n * 8) as f64
}

/// Inner products per CG iteration (= allreduces in the parallel solver).
pub const CG_DOTS_PER_ITER: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::sim_des_shim::Rng;

    #[test]
    fn solves_poisson_2d() {
        let a = Csr::poisson_2d(16, 16);
        let n = a.n;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xs, &mut b);
        let mut x = vec![0.0; n];
        let stats = cg_solve(&a, &b, &mut x, 1e-10, 1000);
        assert!(stats.converged, "{stats:?}");
        let err: f64 = x
            .iter()
            .zip(&xs)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "error {err}");
        // CG on an SPD system of size n converges in <= n iterations.
        assert!(stats.iterations <= n);
    }

    #[test]
    fn solves_random_spd() {
        let mut rng = Rng::new(42);
        let a = Csr::random_spd(200, 4, &mut rng);
        let b: Vec<f64> = (0..200).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut x = vec![0.0; 200];
        let stats = cg_solve(&a, &b, &mut x, 1e-9, 2000);
        assert!(stats.converged, "{stats:?}");
        // Verify residual independently.
        let mut ax = vec![0.0; 200];
        a.spmv(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-6, "residual {res}");
    }

    #[test]
    fn flop_count_matches_formula() {
        let a = Csr::poisson_2d(10, 10);
        let b = vec![1.0; a.n];
        let mut x = vec![0.0; a.n];
        let stats = cg_solve(&a, &b, &mut x, 1e-12, 50);
        let per_iter = cg_iter_flops(a.n, a.nnz());
        let setup = a.spmv_flops() + 4.0 * a.n as f64;
        let expected = setup + stats.iterations as f64 * per_iter;
        assert!(
            (stats.flops - expected).abs() < 1.0,
            "counted {} vs formula {}",
            stats.flops,
            expected
        );
    }

    #[test]
    fn dot_products_track_iterations() {
        let a = Csr::poisson_2d(12, 12);
        let b = vec![1.0; a.n];
        let mut x = vec![0.0; a.n];
        let stats = cg_solve(&a, &b, &mut x, 1e-10, 500);
        assert_eq!(stats.dot_products, 1 + CG_DOTS_PER_ITER * stats.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = Csr::poisson_2d(4, 4);
        let b = vec![0.0; a.n];
        let mut x = vec![0.0; a.n];
        let stats = cg_solve(&a, &b, &mut x, 1e-10, 10);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }
}
