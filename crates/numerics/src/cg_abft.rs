//! Checksum-augmented (ABFT) conjugate gradient.
//!
//! Algorithm-based fault tolerance for CG, after Huang & Abraham's
//! checksum-matrix idea specialized to the Krylov setting: the matrix's
//! column-checksum vector `c = Aᵀ·1` is computed once, and every SpMV
//! `ap = A·p` is verified against the invariant `Σᵢ apᵢ = c·p` — a single
//! corrupted entry of `ap` breaks the identity by its corruption magnitude.
//! Corruption of the *iterates* (`x`, `r`) is invisible to the SpMV
//! checksum, so a second detector runs every [`AbftConfig::check_interval`]
//! iterations: the recursively-updated residual norm `√rr` is compared
//! against the recomputed true residual ‖b − Ax‖ — a bit flip in `x` or `r`
//! makes the two drift apart immediately.
//!
//! Recovery is rollback, not restart: whenever both detectors pass at a
//! check iteration the solver snapshots `(x, r, p, rr)`; a detection
//! restores the last verified snapshot and replays. Before declaring
//! convergence the solver re-runs the full verification once more, so a
//! corruption in the final stretch cannot produce a silently wrong answer.
//!
//! The per-iteration overhead formulas ([`abft_iter_flops`],
//! [`abft_iter_bytes`]) are what the workload models charge when a job runs
//! with ABFT verification enabled.

use crate::cg::{cg_iter_bytes, cg_iter_flops};
use crate::csr::vec_ops::{axpy, dot};
use crate::csr::Csr;

/// Which vector a [`FlipInjection`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipTarget {
    /// The iterate `x` — caught by the residual-drift detector.
    X,
    /// The residual `r` — caught by the residual-drift detector.
    R,
    /// The SpMV output `ap` — caught by the column-checksum detector in the
    /// same iteration.
    Ap,
}

/// A single injected bit flip, applied once when the solver reaches
/// iteration `iter` (immediately after the SpMV for `Ap`, immediately
/// before it for `X`/`R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipInjection {
    pub iter: usize,
    pub target: FlipTarget,
    /// Vector index, taken modulo the problem size.
    pub index: usize,
    /// Bit position within the f64 payload (0..64).
    pub bit: u32,
}

/// Detector/rollback tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbftConfig {
    /// Run the residual-drift check (one extra SpMV) and refresh the
    /// rollback snapshot every this-many iterations.
    pub check_interval: usize,
    /// Column-checksum tolerance, relative to the checksum magnitude.
    pub checksum_rtol: f64,
    /// Residual-drift tolerance, relative to ‖b‖.
    pub drift_rtol: f64,
}

impl Default for AbftConfig {
    fn default() -> Self {
        AbftConfig {
            check_interval: ABFT_CHECK_INTERVAL,
            checksum_rtol: 1e-9,
            // Clean-run drift is O(ε·κ·√iters) ≈ 1e-13 relative for the
            // problems here; 1e-10 keeps orders of magnitude of margin
            // against false positives while catching corruptions whose
            // magnitude has decayed with the residual.
            drift_rtol: 1e-10,
        }
    }
}

/// Outcome of an ABFT-protected CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftStats {
    /// Iterations performed, counting replayed ones.
    pub iterations: usize,
    /// Final verified residual norm ‖b − Ax‖₂.
    pub residual: f64,
    /// Whether the tolerance was met (with a clean final verification).
    pub converged: bool,
    /// Corruptions caught by either detector.
    pub detected: usize,
    /// Detections caught by the per-SpMV column checksum (subset of
    /// `detected`; the rest came from the residual-drift check).
    pub checksum_detected: usize,
    /// Rollbacks performed (== detections; each detection restores the
    /// last verified snapshot).
    pub rollbacks: usize,
    /// Iterations re-executed due to rollbacks.
    pub replayed_iterations: usize,
}

/// Solve `A x = b` by CG with ABFT detection and rollback recovery,
/// injecting the given bit flips along the way. Pass an empty `flips`
/// slice for a production (clean) solve.
pub fn cg_abft_solve(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    cfg: &AbftConfig,
    flips: &[FlipInjection],
) -> AbftStats {
    let n = a.n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert!(cfg.check_interval >= 1);

    // Column checksum c = Aᵀ·1: cⱼ = Σᵢ Aᵢⱼ.
    let mut colsum = vec![0.0; n];
    for (k, &j) in a.col_idx.iter().enumerate() {
        colsum[j] += a.values[k];
    }
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let target = tol * b_norm;
    let drift_tol = cfg.drift_rtol * b_norm;

    let mut r = vec![0.0; n];
    let mut ap = vec![0.0; n];
    a.spmv(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let mut p = r.clone();
    let mut rr = dot(&r, &r);

    // Last verified state; the initial state is verified by construction
    // (r was just recomputed from x).
    let mut snap_x = x.to_vec();
    let mut snap_r = r.clone();
    let mut snap_p = p.clone();
    let mut snap_rr = rr;
    let mut snap_it = 0usize;

    let mut fired = vec![false; flips.len()];
    let mut stats = AbftStats {
        iterations: 0,
        residual: rr.sqrt(),
        converged: false,
        detected: 0,
        checksum_detected: 0,
        rollbacks: 0,
        replayed_iterations: 0,
    };

    // Residual-drift verification: the carried residual vector must agree
    // with the recomputed true residual, ‖r − (b − Ax)‖ ≤ tol — a flip of
    // magnitude δ in either `x` or `r` shows up as ≥ O(δ) here, with no
    // norm-cancellation blind spot — and the recursive scalar `rr` must
    // agree with the vector it claims to summarize. NaN/Inf anywhere
    // compares false against the tolerance, so corrupted arithmetic always
    // trips the detector rather than sneaking past it.
    let drift_ok = |x: &[f64], r: &[f64], rr: f64, scratch: &mut [f64]| -> bool {
        a.spmv(x, scratch);
        let mut diff2 = 0.0;
        for i in 0..n {
            let d = b[i] - scratch[i] - r[i];
            diff2 += d * d;
        }
        let fresh_rr = dot(r, r);
        diff2.sqrt() <= drift_tol && (rr.sqrt() - fresh_rr.sqrt()).abs() <= drift_tol
    };

    let mut scratch = vec![0.0; n];
    let mut it = 0usize;
    // Hard cap so adversarial flip lists cannot loop forever: every
    // detection replays at most check_interval iterations.
    let budget = max_iter + (flips.len() + 1) * cfg.check_interval + max_iter;

    while stats.iterations < budget {
        // Convergence claim must survive a full verification.
        if rr.sqrt() <= target || it >= max_iter {
            if drift_ok(x, &r, rr, &mut scratch) {
                break;
            }
            stats.detected += 1;
            stats.rollbacks += 1;
            stats.replayed_iterations += it - snap_it;
            x.copy_from_slice(&snap_x);
            r.copy_from_slice(&snap_r);
            p.copy_from_slice(&snap_p);
            rr = snap_rr;
            it = snap_it;
            continue;
        }

        // Inject flips scheduled for this iteration on x / r.
        for (f, done) in flips.iter().zip(fired.iter_mut()) {
            if !*done && f.iter == it && matches!(f.target, FlipTarget::X | FlipTarget::R) {
                *done = true;
                let v = match f.target {
                    FlipTarget::X => &mut x[f.index % n],
                    _ => &mut r[f.index % n],
                };
                *v = f64::from_bits(v.to_bits() ^ (1u64 << (f.bit % 64)));
            }
        }

        a.spmv(&p, &mut ap);
        for (f, done) in flips.iter().zip(fired.iter_mut()) {
            if !*done && f.iter == it && f.target == FlipTarget::Ap {
                *done = true;
                let v = &mut ap[f.index % n];
                *v = f64::from_bits(v.to_bits() ^ (1u64 << (f.bit % 64)));
            }
        }

        // Column-checksum invariant: Σ ap = c·p.
        let cp = dot(&colsum, &p);
        let ap_sum: f64 = ap.iter().sum();
        // Purely relative scale: as the Krylov vectors decay toward
        // convergence the tolerance decays with them, so late-solve flips
        // (whose magnitude also decays) stay detectable.
        let scale = colsum
            .iter()
            .zip(&p)
            .map(|(c, pj)| (c * pj).abs())
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        // NaN drift (from a flipped exponent bit) must also read as bad.
        let drift = (ap_sum - cp).abs();
        let checksum_bad = drift.is_nan() || drift > cfg.checksum_rtol * scale;

        // Periodic residual-drift check (also refreshes the snapshot).
        let at_cut = (it + 1).is_multiple_of(cfg.check_interval);
        let drift_bad = if checksum_bad {
            false
        } else if at_cut {
            !drift_ok(x, &r, rr, &mut scratch)
        } else {
            false
        };

        if checksum_bad || drift_bad {
            stats.detected += 1;
            if checksum_bad {
                stats.checksum_detected += 1;
            }
            stats.rollbacks += 1;
            stats.replayed_iterations += it - snap_it;
            x.copy_from_slice(&snap_x);
            r.copy_from_slice(&snap_r);
            p.copy_from_slice(&snap_p);
            rr = snap_rr;
            it = snap_it;
            continue;
        }
        if at_cut {
            snap_x.copy_from_slice(x);
            snap_r.copy_from_slice(&r);
            snap_p.copy_from_slice(&p);
            snap_rr = rr;
            snap_it = it;
        }

        let pap = dot(&p, &ap);
        let alpha = rr / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        it += 1;
        stats.iterations += 1;
    }

    // Final residual, recomputed (never the recursive estimate).
    a.spmv(x, &mut scratch);
    let mut true_rr = 0.0;
    for i in 0..n {
        let d = b[i] - scratch[i];
        true_rr += d * d;
    }
    stats.residual = true_rr.sqrt();
    // The verifier cannot resolve offsets below its own drift tolerance,
    // so the guaranteed residual is `target + drift_tol`.
    stats.converged = stats.residual <= (target + drift_tol) * 1.01;
    stats
}

/// Default drift-check / snapshot cadence.
pub const ABFT_CHECK_INTERVAL: usize = 8;

/// Analytic per-iteration flop count for ABFT-protected CG: the plain CG
/// iteration plus the checksum test (c·p dot, Σ ap reduction and the
/// |c·p| scale — ≈ 4n) plus the amortized drift check (one extra SpMV,
/// the residual subtraction and its norm — ≈ 2·nnz + 3n every
/// `check_interval` iterations).
pub fn abft_iter_flops(n: usize, nnz: usize) -> f64 {
    cg_iter_flops(n, nnz)
        + 4.0 * n as f64
        + (2.0 * nnz as f64 + 3.0 * n as f64) / ABFT_CHECK_INTERVAL as f64
}

/// Analytic per-iteration memory traffic for ABFT-protected CG, bytes:
/// plain CG plus streaming the checksum vector and `ap` again (2 vectors)
/// plus the amortized drift-check SpMV (matrix + 2 vectors).
pub fn abft_iter_bytes(n: usize, nnz: usize) -> f64 {
    cg_iter_bytes(n, nnz)
        + (2 * n * 8) as f64
        + ((nnz * 16 + 2 * n * 8) as f64) / ABFT_CHECK_INTERVAL as f64
}

/// Multiplicative flop overhead of ABFT relative to plain CG (> 1).
pub fn abft_overhead_ratio(n: usize, nnz: usize) -> f64 {
    abft_iter_flops(n, nnz) / cg_iter_flops(n, nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_solve;
    use crate::csr::sim_des_shim::Rng;

    fn problem(n_side: usize) -> (Csr, Vec<f64>, Vec<f64>) {
        let a = Csr::poisson_2d(n_side, n_side);
        let n = a.n;
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i * 31) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let mut b = vec![0.0; n];
        a.spmv(&xs, &mut b);
        (a, b, xs)
    }

    fn max_err(x: &[f64], xs: &[f64]) -> f64 {
        x.iter()
            .zip(xs)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn clean_run_matches_plain_cg_with_zero_false_positives() {
        let (a, b, xs) = problem(24);
        let mut x_abft = vec![0.0; a.n];
        let st = cg_abft_solve(
            &a,
            &b,
            &mut x_abft,
            1e-10,
            5000,
            &AbftConfig::default(),
            &[],
        );
        assert!(st.converged, "{st:?}");
        assert_eq!(st.detected, 0, "false positive on a clean run: {st:?}");
        assert_eq!(st.rollbacks, 0);
        let mut x_plain = vec![0.0; a.n];
        let plain = cg_solve(&a, &b, &mut x_plain, 1e-10, 5000);
        assert!(plain.converged);
        // Identical arithmetic on the untouched path: same iterate.
        assert!(max_err(&x_abft, &x_plain) < 1e-12);
        assert!(max_err(&x_abft, &xs) < 1e-5);
    }

    #[test]
    fn clean_runs_over_random_spd_never_false_positive() {
        for case in 0..8u64 {
            let mut rng = Rng::new(0xABF7_0001 + case);
            let n = 50 + rng.index(150);
            let a = Csr::random_spd(n, 3, &mut rng);
            let xs: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
            let mut b = vec![0.0; n];
            a.spmv(&xs, &mut b);
            let mut x = vec![0.0; n];
            let st = cg_abft_solve(&a, &b, &mut x, 1e-10, 20 * n, &AbftConfig::default(), &[]);
            assert!(st.converged, "case {case}: {st:?}");
            assert_eq!(st.detected, 0, "case {case}: {st:?}");
        }
    }

    /// The acceptance gate: ≥ 99% of injected single high-bit flips are
    /// detected, and *every* run — detected or not — still converges to
    /// the correct solution (correction via rollback + final verification).
    #[test]
    fn detects_and_corrects_injected_bit_flips() {
        let (a, b, xs) = problem(24);
        let n = a.n;
        // Find the clean iteration count so injections land mid-solve.
        let mut xw = vec![0.0; n];
        let clean = cg_abft_solve(&a, &b, &mut xw, 1e-10, 5000, &AbftConfig::default(), &[]);
        assert!(clean.converged);
        let span = clean.iterations;
        assert!(span > 20, "need a solve long enough to corrupt: {span}");

        let targets = [FlipTarget::X, FlipTarget::R, FlipTarget::Ap];
        let bits: [u32; 8] = [55, 56, 57, 58, 59, 60, 61, 62];
        let mut injected = 0usize;
        let mut detected = 0usize;
        let mut case = 0usize;
        for (ti, &target) in targets.iter().enumerate() {
            for (bi, &bit) in bits.iter().enumerate() {
                for k in 0..9usize {
                    // Spread over indices and mid-solve iterations.
                    let flip = FlipInjection {
                        iter: span / 5 + (k * span) / 18,
                        target,
                        index: (17 * case + 3 * ti + 5 * bi) % n,
                        bit,
                    };
                    case += 1;
                    let mut x = vec![0.0; n];
                    let st =
                        cg_abft_solve(&a, &b, &mut x, 1e-10, 5000, &AbftConfig::default(), &[flip]);
                    injected += 1;
                    if st.detected > 0 {
                        detected += 1;
                        assert!(st.rollbacks >= 1, "{flip:?}: {st:?}");
                    }
                    // Correction: the answer is right regardless.
                    assert!(st.converged, "{flip:?}: {st:?}");
                    assert!(
                        max_err(&x, &xs) < 1e-5,
                        "{flip:?}: wrong answer, err {}",
                        max_err(&x, &xs)
                    );
                    // Ap flips break the checksum identity in-iteration.
                    if target == FlipTarget::Ap {
                        assert!(st.checksum_detected >= 1, "{flip:?}: {st:?}");
                    }
                }
            }
        }
        assert_eq!(injected, 216);
        let rate = detected as f64 / injected as f64;
        assert!(
            rate >= 0.99,
            "detection rate {rate:.4} ({detected}/{injected}) below 99%"
        );
    }

    #[test]
    fn rollback_replays_bounded_work() {
        let (a, b, _) = problem(16);
        let n = a.n;
        let flips: Vec<FlipInjection> = (0..6)
            .map(|k| FlipInjection {
                iter: 10 + 7 * k,
                target: [FlipTarget::X, FlipTarget::R, FlipTarget::Ap][k % 3],
                index: (31 * k) % n,
                bit: 62,
            })
            .collect();
        let mut x = vec![0.0; n];
        let st = cg_abft_solve(&a, &b, &mut x, 1e-10, 5000, &AbftConfig::default(), &flips);
        assert!(st.converged, "{st:?}");
        assert_eq!(st.detected, st.rollbacks);
        assert!(st.detected >= 5, "{st:?}");
        // Each rollback replays at most ~check_interval iterations (plus
        // the detection latency for drift-detected flips).
        assert!(
            st.replayed_iterations <= st.rollbacks * 2 * ABFT_CHECK_INTERVAL,
            "{st:?}"
        );
    }

    #[test]
    fn overhead_formulas_are_modest_and_monotone() {
        let a = Csr::poisson_2d(32, 32);
        let (n, nnz) = (a.n, a.nnz());
        let ratio = abft_overhead_ratio(n, nnz);
        assert!(ratio > 1.0, "ABFT must cost something: {ratio}");
        assert!(ratio < 1.6, "ABFT overhead should stay modest: {ratio}");
        assert!(abft_iter_flops(n, nnz) > cg_iter_flops(n, nnz));
        assert!(abft_iter_bytes(n, nnz) > cg_iter_bytes(n, nnz));
        // Denser matrices amortize the vector-side overhead.
        let sparse = abft_overhead_ratio(1000, 5 * 1000);
        let dense = abft_overhead_ratio(1000, 50 * 1000);
        assert!(dense < sparse);
    }
}
