//! `numerics` — real numerical kernels behind the study's workloads.
//!
//! The simulator charges *modelled* flop counts for each workload; this
//! crate implements the actual algorithms (sparse CG, radix-2 FFT, 3-D
//! multigrid, counting sort, the NPB `randlc` generator and the EP kernel)
//! so that
//!
//! 1. the runnable examples do real mathematics, and
//! 2. property tests can validate the analytic per-iteration flop/byte
//!    formulas the workload models use against instrumented executions.

pub mod cg;
pub mod cg_abft;
pub mod csr;
pub mod ep;
pub mod fft;
pub mod mg;
pub mod npb_rng;
pub mod sort;
pub mod tridiag;

pub use cg::{cg_iter_bytes, cg_iter_flops, cg_solve, CgStats, CG_DOTS_PER_ITER};
pub use cg_abft::{
    abft_iter_bytes, abft_iter_flops, abft_overhead_ratio, cg_abft_solve, AbftConfig, AbftStats,
    FlipInjection, FlipTarget, ABFT_CHECK_INTERVAL,
};
pub use csr::{vec_ops, Csr};
pub use ep::{ep_rank, ep_serial, EpResult, EP_FLOPS_PER_PAIR};
pub use fft::{fft, fft_flops, C64};
pub use mg::{residual, restrict, smooth, v_cycle, v_cycle_flops, Grid3};
pub use npb_rng::{NpbRng, A as NPB_LCG_A, EP_SEED};
pub use sort::{bucket_counts, counting_sort, generate_keys};
pub use tridiag::{
    adi_heat_step, adi_step_flops, penta_flops, penta_solve, thomas_flops, thomas_solve,
};

#[cfg(test)]
mod proptests {
    //! Randomized invariant sweeps driven by the seeded shim RNG —
    //! deterministic and dependency-free.
    use super::*;

    /// CG solves every diagonally-dominant random SPD system.
    #[test]
    fn cg_solves_random_spd() {
        for case in 0..16u64 {
            let mut rng = csr::sim_des_shim::Rng::new(0x9_0001 + case);
            let n = 20 + rng.index(100);
            let a = Csr::random_spd(n, 3, &mut rng);
            let xs: Vec<f64> = (0..n)
                .map(|i| ((i * 31) % 17) as f64 / 17.0 - 0.5)
                .collect();
            let mut b = vec![0.0; n];
            a.spmv(&xs, &mut b);
            let mut x = vec![0.0; n];
            let st = cg_solve(&a, &b, &mut x, 1e-10, 10 * n);
            assert!(st.converged, "{st:?}");
            let err: f64 = x
                .iter()
                .zip(&xs)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-5, "max err {err}");
        }
    }

    /// FFT round-trips arbitrary signals.
    #[test]
    fn fft_roundtrip() {
        for log_n in 1u32..10 {
            let n = 1usize << log_n;
            let mut rng = csr::sim_des_shim::Rng::new(0x9_0002 + log_n as u64);
            let mut d: Vec<C64> = (0..n)
                .map(|_| C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5))
                .collect();
            let orig = d.clone();
            fft(&mut d, false);
            fft(&mut d, true);
            for (a, b) in d.iter().zip(&orig) {
                assert!((a.re - b.re).abs() < 1e-9);
                assert!((a.im - b.im).abs() < 1e-9);
            }
        }
    }

    /// Counting sort equals std sort on arbitrary key sets.
    #[test]
    fn counting_sort_correct() {
        for case in 0..16u64 {
            let mut rng = csr::sim_des_shim::Rng::new(0x9_0003 + case);
            let n = rng.index(500);
            let keys: Vec<u32> = (0..n).map(|_| rng.index(1024) as u32).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(counting_sort(&keys, 1024), expect);
        }
    }

    /// NPB RNG skip-ahead is exactly equivalent to stepping.
    #[test]
    fn npb_skip_equivalence() {
        for k in [0u64, 1, 2, 3, 17, 100, 1023, 1024, 4999] {
            let mut a = NpbRng::new(EP_SEED);
            for _ in 0..k {
                a.next_f64();
            }
            let mut b = NpbRng::new(EP_SEED);
            b.skip(k);
            assert_eq!(a.state(), b.state());
        }
    }

    /// EP partition invariance for arbitrary power-of-two rank counts.
    #[test]
    fn ep_partition_invariant() {
        for log_np in 0u32..4 {
            let np = 1u64 << log_np;
            let serial = ep_serial(10);
            let mut merged = ep_rank(10, np, 0);
            for r in 1..np {
                merged.merge(&ep_rank(10, np, r));
            }
            assert_eq!(merged.q, serial.q);
            assert_eq!(merged.accepted, serial.accepted);
        }
    }
}
