//! The EP (embarrassingly parallel) kernel, for real.
//!
//! EP generates pairs of uniform deviates with the NPB LCG, applies the
//! Marsaglia polar method to get Gaussian pairs, and tallies them into ten
//! square annuli. Its only communication is a final tiny reduction — which
//! is why the paper sees near-linear speedup everywhere (modulo EC2 jitter).

use crate::npb_rng::{NpbRng, EP_SEED};

/// Result of an EP run (or of one rank's share of it).
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of accepted Gaussian x deviates.
    pub sx: f64,
    /// Sum of accepted Gaussian y deviates.
    pub sy: f64,
    /// Annulus counts `q[0..10]`.
    pub q: [u64; 10],
    /// Number of accepted pairs.
    pub accepted: u64,
}

impl EpResult {
    /// Merge another rank's partial result (the MPI_Allreduce in real EP).
    pub fn merge(&mut self, o: &EpResult) {
        self.sx += o.sx;
        self.sy += o.sy;
        for i in 0..10 {
            self.q[i] += o.q[i];
        }
        self.accepted += o.accepted;
    }
}

/// Run one rank's share of an EP problem of `2^m` pairs split over `np`
/// ranks; `rank` selects the block of the random stream.
pub fn ep_rank(m: u32, np: u64, rank: u64) -> EpResult {
    let total_pairs = 1u64 << m;
    let per_rank = total_pairs / np;
    let start = rank * per_rank;
    let mut rng = NpbRng::new(EP_SEED);
    // Each pair consumes two deviates.
    rng.skip(2 * start);
    let mut res = EpResult {
        sx: 0.0,
        sy: 0.0,
        q: [0; 10],
        accepted: 0,
    };
    for _ in 0..per_rank {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = x * f;
            let gy = y * f;
            let bin = gx.abs().max(gy.abs()) as usize;
            if bin < 10 {
                res.q[bin] += 1;
                res.sx += gx;
                res.sy += gy;
                res.accepted += 1;
            }
        }
    }
    res
}

/// Run the whole EP problem on one thread (reference).
pub fn ep_serial(m: u32) -> EpResult {
    ep_rank(m, 1, 0)
}

/// Flops per generated pair (NPB counts ~17; we include the transcendental
/// as its polynomial cost) — used by the EP workload model.
pub const EP_FLOPS_PER_PAIR: f64 = 22.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_invariance() {
        // The defining property of EP: any rank decomposition reproduces the
        // serial tallies exactly (this is what the skip-ahead guarantees).
        let serial = ep_serial(14);
        for np in [2u64, 4, 8] {
            let mut merged = ep_rank(14, np, 0);
            for r in 1..np {
                merged.merge(&ep_rank(14, np, r));
            }
            assert_eq!(merged.q, serial.q, "np={np}");
            assert!((merged.sx - serial.sx).abs() < 1e-9);
            assert!((merged.sy - serial.sy).abs() < 1e-9);
            assert_eq!(merged.accepted, serial.accepted);
        }
    }

    #[test]
    fn acceptance_rate_near_pi_over_4() {
        let r = ep_serial(16);
        let rate = r.accepted as f64 / (1u64 << 16) as f64;
        // pi/4 ~ 0.785, minus the tail clipped past |g| >= 10 (negligible).
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate {rate}"
        );
    }

    #[test]
    fn gaussian_sums_are_small_relative_to_count() {
        // Mean of a Gaussian is 0: sums grow like sqrt(n), not n.
        let r = ep_serial(16);
        let n = r.accepted as f64;
        assert!(r.sx.abs() < 5.0 * n.sqrt());
        assert!(r.sy.abs() < 5.0 * n.sqrt());
    }

    #[test]
    fn annuli_counts_decrease() {
        // |N(0,1)| concentrates near 0: q[0] must dominate and the tail
        // bins must be (nearly) empty.
        let r = ep_serial(16);
        assert!(r.q[0] > r.q[1] && r.q[1] > r.q[2]);
        assert_eq!(r.q[6..].iter().sum::<u64>(), 0);
    }
}
