//! Compressed sparse row matrices and SpMV.
//!
//! The real computational heart of both CG-type workloads in the study: the
//! NPB CG kernel and the Chaste KSp solve are dominated by sparse
//! matrix-vector products. This implementation is used by the runnable
//! examples and by the tests that validate the flop formulas the workload
//! models charge to the simulator.

/// A square sparse matrix in CSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from triplets; duplicate entries are summed.
    pub fn from_triplets(n: usize, mut triplets: Vec<(usize, usize, f64)>) -> Csr {
        triplets.sort_by_key(|(r, c, _)| (*r, *c));
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty on duplicate") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1; // counts, prefixed-summed below
                last = Some((r, c));
            }
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Floating-point operations one SpMV performs (2 per stored entry).
    pub fn spmv_flops(&self) -> f64 {
        2.0 * self.nnz() as f64
    }

    /// Memory traffic one SpMV streams, bytes (values + indices + vectors).
    pub fn spmv_bytes(&self) -> f64 {
        (self.nnz() * (8 + 8) + self.n * (8 + 8 + 8)) as f64
    }

    /// The standard 5-point 2-D Poisson stencil on an `nx` × `ny` grid
    /// (Dirichlet boundaries): SPD, the classic CG test matrix.
    pub fn poisson_2d(nx: usize, ny: usize) -> Csr {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::with_capacity(5 * n);
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                t.push((me, me, 4.0));
                if i > 0 {
                    t.push((me, idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((me, idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((me, idx(i, j - 1), -1.0));
                }
                if j + 1 < ny {
                    t.push((me, idx(i, j + 1), -1.0));
                }
            }
        }
        Csr::from_triplets(n, t)
    }

    /// A random sparse SPD matrix: strictly diagonally dominant with `k`
    /// off-diagonal entries per row, for property tests.
    pub fn random_spd(n: usize, k: usize, rng: &mut sim_des_shim::Rng) -> Csr {
        let mut t = Vec::with_capacity(n * (k + 1));
        for i in 0..n {
            let mut row_sum = 0.0;
            for _ in 0..k {
                let j = rng.index(n);
                if j == i {
                    continue;
                }
                let v = rng.uniform() - 0.5;
                // Keep symmetry by adding both (i,j) and (j,i).
                t.push((i, j, v));
                t.push((j, i, v));
                row_sum += v.abs();
            }
            t.push((i, i, 2.0 * row_sum + 1.0 + rng.uniform()));
        }
        // Symmetrize diagonal dominance: bump every diagonal by the global
        // max row sum to be safe.
        let bump: f64 = 2.0 * k as f64;
        let mut m = Csr::from_triplets(n, t);
        for i in 0..n {
            for kk in m.row_ptr[i]..m.row_ptr[i + 1] {
                if m.col_idx[kk] == i {
                    m.values[kk] += bump;
                }
            }
        }
        m
    }
}

/// Minimal RNG shim so `numerics` keeps a tiny dependency surface; this
/// mirrors the few methods of `sim_des::DetRng` the kernels need.
pub mod sim_des_shim {
    /// Deterministic small RNG (self-contained xoshiro256++, SplitMix64
    /// seeded — no external crates).
    #[derive(Debug, Clone)]
    pub struct Rng([u64; 4]);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Rng([next(), next(), next(), next()])
        }
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.0;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
        pub fn index(&mut self, n: usize) -> usize {
            (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
        }
    }
}

/// Dense vector helpers used by the solvers.
pub mod vec_ops {
    /// Dot product.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y += alpha * x`.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Euclidean norm.
    pub fn norm2(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spmv() {
        let eye = Csr::from_triplets(3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        eye.spmv(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(eye.nnz(), 3);
    }

    #[test]
    fn poisson_2d_shape() {
        let a = Csr::poisson_2d(4, 4);
        assert_eq!(a.n, 16);
        // nnz = diagonal + 2 * (grid-graph edges) = 16 + 2*(4*3 + 4*3).
        assert_eq!(a.nnz(), 16 + 2 * (4 * 3 + 4 * 3));
        // Symmetric: A = A^T via spot check y1 = A e0, y2 = A e1.
        let mut e0 = vec![0.0; 16];
        e0[0] = 1.0;
        let mut y0 = vec![0.0; 16];
        a.spmv(&e0, &mut y0);
        let mut e1 = vec![0.0; 16];
        e1[1] = 1.0;
        let mut y1 = vec![0.0; 16];
        a.spmv(&e1, &mut y1);
        assert_eq!(y0[1], y1[0]);
    }

    #[test]
    fn flop_and_byte_counts() {
        let a = Csr::poisson_2d(8, 8);
        assert_eq!(a.spmv_flops(), 2.0 * a.nnz() as f64);
        assert!(a.spmv_bytes() > a.nnz() as f64 * 16.0);
    }

    #[test]
    fn vec_ops_basics() {
        assert_eq!(vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        vec_ops::axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        assert!((vec_ops::norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
