//! Bucket/counting sort of integer keys — the IS kernel's computation.
//!
//! NPB IS ranks `N` uniformly-distributed integer keys by bucketing and
//! counting. In the MPI version each rank buckets its local keys, the bucket
//! counts are allreduced, and the keys are redistributed with an
//! all-to-allv; the sort itself is this counting pass.

/// Distribute keys into `nbuckets` equal ranges over `[0, max_key)`,
/// returning per-bucket counts. This is the histogram IS allreduces.
pub fn bucket_counts(keys: &[u32], max_key: u32, nbuckets: usize) -> Vec<u64> {
    assert!(nbuckets > 0 && max_key > 0);
    let mut counts = vec![0u64; nbuckets];
    let shift_div = (max_key as u64).div_ceil(nbuckets as u64).max(1);
    for &k in keys {
        debug_assert!(k < max_key);
        let b = (k as u64 / shift_div) as usize;
        counts[b.min(nbuckets - 1)] += 1;
    }
    counts
}

/// Full counting sort (stable by construction for plain keys).
pub fn counting_sort(keys: &[u32], max_key: u32) -> Vec<u32> {
    let mut counts = vec![0u64; max_key as usize];
    for &k in keys {
        counts[k as usize] += 1;
    }
    let mut out = Vec::with_capacity(keys.len());
    for (k, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            out.push(k as u32);
        }
    }
    out
}

/// Generate IS-style keys with the NPB LCG: uniform in `[0, max_key)` by
/// averaging four deviates like the real benchmark (gives a triangular-ish
/// concentration around the middle — NPB does exactly this).
pub fn generate_keys(n: usize, max_key: u32, seed: u64) -> Vec<u32> {
    let mut rng = crate::npb_rng::NpbRng::new(seed | 1);
    (0..n)
        .map(|_| {
            let s = rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64();
            ((s / 4.0) * max_key as f64) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sort_sorts() {
        let keys = vec![5, 3, 9, 1, 3, 0, 9];
        let sorted = counting_sort(&keys, 10);
        assert_eq!(sorted, vec![0, 1, 3, 3, 5, 9, 9]);
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn bucket_counts_partition_everything() {
        let keys = generate_keys(10_000, 1 << 16, 271828183);
        let counts = bucket_counts(&keys, 1 << 16, 64);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn npb_key_distribution_concentrates_centrally() {
        // Averaging four uniforms concentrates mass near max_key/2 — the
        // real IS distribution. The middle buckets must dominate the edges.
        let keys = generate_keys(100_000, 1 << 16, 271828183);
        let counts = bucket_counts(&keys, 1 << 16, 8);
        let middle = counts[3] + counts[4];
        let edges = counts[0] + counts[7];
        assert!(middle > edges * 10, "middle {middle} edges {edges}");
    }

    #[test]
    fn bucket_then_concat_equals_sort() {
        let keys = generate_keys(5_000, 1 << 10, 271828183);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(counting_sort(&keys, 1 << 10), expect);
    }

    #[test]
    fn empty_input() {
        assert!(counting_sort(&[], 10).is_empty());
        assert_eq!(bucket_counts(&[], 10, 4), vec![0, 0, 0, 0]);
    }
}
