//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3: DoS-resistant but
//! ~10x slower than necessary for the small fixed-width keys the engine
//! uses (rank pairs, tags, collective sequence numbers). This is the
//! classic "Fx" multiply-rotate hash used by rustc: one rotate, one xor
//! and one multiply per word. Inputs here are simulation-internal (never
//! attacker-controlled), so hash-flooding resistance buys nothing.
//!
//! Unlike `RandomState`, `FxBuildHasher` is zero-seeded and therefore
//! *stable across runs and platforms* — a map iterated in hash order can
//! never make two identical runs diverge. (Engine code still avoids
//! iterating maps where order could leak into results; see
//! `determinism.rs`.)

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` for [`FxHasher`]; zero-sized and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-instance randomness: the same key always hashes the same.
        assert_eq!(hash_one(&(3u32, 5u32, 7u32)), hash_one(&(3u32, 5u32, 7u32)));
        assert_eq!(hash_one(&"channel"), hash_one(&"channel"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_one(&(0u32, 1u32, 0u32));
        let b = hash_one(&(1u32, 0u32, 0u32));
        let c = hash_one(&(0u32, 0u32, 1u32));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 0xAB), i as u64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i ^ 0xAB)), Some(&(i as u64)));
        }
        assert_eq!(m.get(&(1000, 0)), None);
    }

    #[test]
    fn byte_tail_lengths_differ() {
        // Tail handling must not collide a prefix with its extension.
        let h1 = {
            let mut h = FxHasher::default();
            h.write(b"abc");
            h.finish()
        };
        let h2 = {
            let mut h = FxHasher::default();
            h.write(b"abc\0");
            h.finish()
        };
        assert_ne!(h1, h2);
    }
}
