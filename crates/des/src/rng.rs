//! Deterministic random number generation for noise models.
//!
//! Every stochastic model component (hypervisor jitter, vSwitch scheduling
//! delays, OS noise) draws from a [`DetRng`] seeded from the experiment seed
//! plus a stable stream identifier, so runs are reproducible and independent
//! noise sources do not share a stream.

/// Xoshiro256++ core: small, fast, and entirely self-contained (no external
/// crates). Seeded through SplitMix64 as its authors recommend.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A deterministic RNG with the distribution helpers the noise models need.
///
/// External RNG crates are not part of the approved dependency set, so both
/// the generator (xoshiro256++) and the normal / log-normal / Pareto samplers
/// are implemented here directly (Box–Muller and inverse-CDF respectively).
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: Xoshiro256,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create a generator from an experiment seed and a stream id. Different
    /// `stream` values yield statistically independent sequences for the same
    /// seed (SplitMix64 scrambling of the pair).
    pub fn new(seed: u64, stream: u64) -> Self {
        let mixed = splitmix64(seed ^ splitmix64(stream.wrapping_add(0x9E3779B97F4A7C15)));
        DetRng {
            inner: Xoshiro256::seed_from_u64(mixed),
            spare_normal: None,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Reject u1 == 0 so ln() is finite.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal variate parameterised by the underlying normal's `mu` and
    /// `sigma`. Heavy-tailed; used for hypervisor scheduling stalls.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        -mean * u.ln()
    }

    /// Pareto variate with minimum `x_min` and shape `alpha` (> 0). Models the
    /// rare, large scheduling delays of oversubscribed hypervisors.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0 && x_min > 0.0);
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        x_min / u.powf(1.0 / alpha)
    }

    /// Uniform integer in `[0, n)` (widening-multiply rejection-free map).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.inner.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A raw 64-bit draw, for deriving child seeds.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// SplitMix64 finalizer: a cheap, high-quality scrambler for seed derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed_and_stream() {
        let mut a = DetRng::new(7, 3);
        let mut b = DetRng::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = DetRng::new(7, 0);
        let mut b = DetRng::new(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(1, 0);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = DetRng::new(2, 0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = DetRng::new(3, 0);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = DetRng::new(4, 0);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
