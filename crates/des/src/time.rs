//! Simulated time.
//!
//! All simulation arithmetic happens on [`SimTime`] (an absolute instant) and
//! [`SimDur`] (a span), both integer nanosecond counts. Using integers keeps
//! the simulation deterministic across platforms and immune to floating-point
//! accumulation drift over the millions of events a long run produces; model
//! code converts to `f64` seconds only at the cost-model boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative inputs clamp to zero (model costs are never negative).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_ns(s))
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span since an earlier instant; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDur {
    /// A zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur(secs_to_ns(s))
    }

    /// Construct from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDur(secs_to_ns(us / 1e6))
    }

    /// Construct from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }

    /// Scale the span by a non-negative factor.
    pub fn scale(self, factor: f64) -> SimDur {
        debug_assert!(factor >= 0.0, "negative scale factor {factor}");
        SimDur((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_ns(s: f64) -> u64 {
    if s <= 0.0 || !s.is_finite() {
        0
    } else {
        // Round to nearest; costs are tiny fractions of a second so the f64
        // mantissa comfortably covers the nanosecond grid.
        (s * 1e9).round() as u64
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        SimDur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDur::from_secs_f64(-1.0), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NAN), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NEG_INFINITY), SimDur::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDur::ZERO);
        assert_eq!(b.since(a), SimDur::from_secs_f64(1.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDur::from_micros_f64(2.0);
        assert_eq!(t.0, 1_000_002_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_micros_f64(), 2.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDur(500)), "500ns");
        assert_eq!(format!("{}", SimDur(2_500)), "2.50us");
        assert_eq!(format!("{}", SimDur(3_000_000)), "3.000ms");
        assert_eq!(format!("{}", SimDur(4_000_000_000)), "4.000s");
    }

    #[test]
    fn scale_rounds() {
        let d = SimDur::from_nanos(100);
        assert_eq!(d.scale(2.5), SimDur::from_nanos(250));
        assert_eq!(d.scale(0.0), SimDur::ZERO);
    }
}
