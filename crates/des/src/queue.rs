//! Deterministic event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders events
//! by `(time, sequence)` so that two events scheduled for the same instant
//! always pop in insertion order. Determinism here is what makes whole-run
//! results bit-reproducible given a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue keyed by simulated time with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
