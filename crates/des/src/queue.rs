//! Deterministic event queue.
//!
//! Orders events by `(time, insertion order)` so that two events scheduled
//! for the same instant always pop FIFO. Determinism here is what makes
//! whole-run results bit-reproducible given a seed.
//!
//! Internally the queue buckets events by timestamp: a min-heap holds each
//! *distinct* pending time once, and a hash map carries that instant's FIFO
//! of events. Discrete-event MPI simulation produces heavy timestamp ties —
//! a completing collective releases every participant at the same tick — so
//! bucketing turns `n` same-time push/pop pairs from `n log n` heap sifts
//! into one heap operation plus `n` O(1) queue hits. Drained buckets are
//! recycled through a small pool so steady state allocates nothing.

use crate::fxhash::FxHashMap;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// An event queue keyed by simulated time with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Each distinct pending timestamp, min-first. A time is present here
    /// iff `buckets[time]` exists and is non-empty.
    times: BinaryHeap<Reverse<SimTime>>,
    buckets: FxHashMap<SimTime, VecDeque<E>>,
    /// Emptied bucket queues kept for reuse.
    pool: Vec<VecDeque<E>>,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            times: BinaryHeap::new(),
            buckets: FxHashMap::default(),
            pool: Vec::new(),
            len: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    /// The engine sizes this to the rank count so steady-state pushes
    /// never grow the heap.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            times: BinaryHeap::with_capacity(cap),
            buckets: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            pool: Vec::new(),
            len: 0,
        }
    }

    /// Schedule `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.len += 1;
        match self.buckets.entry(time) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().push_back(event);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut q = self.pool.pop().unwrap_or_default();
                q.push_back(event);
                v.insert(q);
                self.times.push(Reverse(time));
            }
        }
    }

    /// Remove and return the earliest event, with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &Reverse(t) = self.times.peek()?;
        let q = self.buckets.get_mut(&t).expect("pending time has a bucket");
        let e = q.pop_front().expect("pending bucket is non-empty");
        if q.is_empty() {
            let q = self.buckets.remove(&t).expect("bucket exists");
            self.pool.push(q);
            self.times.pop();
        }
        self.len -= 1;
        Some((t, e))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.times.peek().map(|&Reverse(t)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn interleaved_ties_and_distinct_times() {
        // Pushes at mixed instants, including re-populating an instant
        // that was fully drained earlier, must still pop (time, FIFO).
        let mut q = EventQueue::new();
        q.push(SimTime(7), 0);
        q.push(SimTime(3), 1);
        q.push(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(3), 1)));
        assert_eq!(q.pop(), Some((SimTime(7), 0)));
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        // Re-populate a previously drained time.
        q.push(SimTime(7), 3);
        q.push(SimTime(5), 4);
        assert_eq!(q.pop(), Some((SimTime(5), 4)));
        assert_eq!(q.pop(), Some((SimTime(7), 3)));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
