//! `sim-des` — deterministic discrete-event simulation primitives.
//!
//! This is the foundation layer of the cloudsim study: a nanosecond-grid
//! simulated clock ([`SimTime`], [`SimDur`]), a FIFO-tie-broken event queue
//! ([`EventQueue`]), seeded noise generators ([`DetRng`]) and the summary
//! statistics ([`stats`]) used by every report.
//!
//! Higher layers (the network models in `sim-net`, the cluster models in
//! `sim-platform` and the MPI runtime in `sim-mpi`) build their own
//! schedulers on these primitives; nothing in this crate knows about ranks,
//! messages or nodes.

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::{splitmix64, DetRng};
pub use stats::{geo_mean, quantile, Summary};
pub use time::{SimDur, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, regardless of
        /// insertion order.
        #[test]
        fn queue_pops_monotonic(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Same-timestamp events preserve insertion order (FIFO).
        #[test]
        fn queue_fifo_at_equal_times(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(7), i);
            }
            for i in 0..n {
                prop_assert_eq!(q.pop(), Some((SimTime(7), i)));
            }
        }

        /// Time round-trips through f64 seconds to nanosecond precision for
        /// realistic magnitudes (up to ~10^5 s runs).
        #[test]
        fn time_roundtrip(ns in 0u64..100_000_000_000_000) {
            let t = SimTime(ns);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            // f64 has 52 mantissa bits; below 2^52 ns (~52 days) exact.
            prop_assert!((back.0 as i128 - ns as i128).abs() <= 16);
        }

        /// DetRng streams are reproducible.
        #[test]
        fn rng_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
            let mut a = DetRng::new(seed, stream);
            let mut b = DetRng::new(seed, stream);
            for _ in 0..16 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        /// Summary invariants: min <= mean <= max, imbalance in [0, 100].
        #[test]
        fn summary_invariants(values in proptest::collection::vec(0.0f64..1e6, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!((0.0..=100.0).contains(&s.imbalance_pct()));
        }
    }
}
