//! `sim-des` — deterministic discrete-event simulation primitives.
//!
//! This is the foundation layer of the cloudsim study: a nanosecond-grid
//! simulated clock ([`SimTime`], [`SimDur`]), a FIFO-tie-broken event queue
//! ([`EventQueue`]), seeded noise generators ([`DetRng`]) and the summary
//! statistics ([`stats`]) used by every report.
//!
//! Higher layers (the network models in `sim-net`, the cluster models in
//! `sim-platform` and the MPI runtime in `sim-mpi`) build their own
//! schedulers on these primitives; nothing in this crate knows about ranks,
//! messages or nodes.

pub mod fxhash;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::EventQueue;
pub use rng::{splitmix64, DetRng};
pub use stats::{geo_mean, quantile, Summary};
pub use time::{SimDur, SimTime};

#[cfg(test)]
mod proptests {
    //! Randomized invariant sweeps, driven by a seeded [`DetRng`] so they
    //! are deterministic and dependency-free.
    use super::*;

    /// Events always pop in non-decreasing time order, regardless of
    /// insertion order.
    #[test]
    fn queue_pops_monotonic() {
        for case in 0..64u64 {
            let mut rng = DetRng::new(0xD35_0001, case);
            let n = 1 + rng.index(199);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(rng.index(1_000_000) as u64), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        }
    }

    /// Same-timestamp events preserve insertion order (FIFO).
    #[test]
    fn queue_fifo_at_equal_times() {
        for n in [1usize, 2, 3, 17, 99] {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(7), i);
            }
            for i in 0..n {
                assert_eq!(q.pop(), Some((SimTime(7), i)));
            }
        }
    }

    /// Time round-trips through f64 seconds to nanosecond precision for
    /// realistic magnitudes (up to ~10^5 s runs).
    #[test]
    fn time_roundtrip() {
        let mut rng = DetRng::new(0xD35_0002, 0);
        for _ in 0..256 {
            let ns = rng.next_u64() % 100_000_000_000_000;
            let t = SimTime(ns);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            // f64 has 52 mantissa bits; below 2^52 ns (~52 days) exact.
            assert!((back.0 as i128 - ns as i128).abs() <= 16);
        }
    }

    /// DetRng streams are reproducible.
    #[test]
    fn rng_reproducible() {
        let mut meta = DetRng::new(0xD35_0003, 0);
        for _ in 0..32 {
            let (seed, stream) = (meta.next_u64(), meta.next_u64());
            let mut a = DetRng::new(seed, stream);
            let mut b = DetRng::new(seed, stream);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    /// Summary invariants: min <= mean <= max, imbalance in [0, 100].
    #[test]
    fn summary_invariants() {
        for case in 0..64u64 {
            let mut rng = DetRng::new(0xD35_0004, case);
            let n = 1 + rng.index(99);
            let values: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
            let s = Summary::of(&values).unwrap();
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!((0.0..=100.0).contains(&s.imbalance_pct()));
        }
    }
}
