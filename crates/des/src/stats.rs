//! Small summary-statistics helpers used across the study.
//!
//! These back the IPM-style reports (min / max / mean / imbalance over ranks)
//! and the min-of-N-repeats methodology the paper uses.

/// Summary of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std_dev: f64,
}

impl Summary {
    /// Compute a summary; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Some(Summary {
            n,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        })
    }

    /// Load-imbalance percentage as IPM reports it: `(max - mean) / max`,
    /// i.e. the fraction of the critical path the average rank spends waiting.
    /// Zero when perfectly balanced or when `max` is zero.
    pub fn imbalance_pct(&self) -> f64 {
        if self.max <= 0.0 {
            0.0
        } else {
            100.0 * (self.max - self.mean) / self.max
        }
    }

    /// Coefficient of variation in percent.
    pub fn cv_pct(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Geometric mean; ignores non-positive entries (returns `None` if none are
/// positive). Used to aggregate normalized benchmark ratios.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn imbalance_balanced_is_zero() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.imbalance_pct(), 0.0);
    }

    #[test]
    fn imbalance_matches_definition() {
        // max = 4, mean = 2 -> 50%
        let s = Summary::of(&[0.0, 2.0, 4.0]).unwrap();
        assert!((s.imbalance_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn geo_mean_of_ratios() {
        let g = geo_mean(&[2.0, 0.5]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geo_mean(&[0.0, -1.0]).is_none());
    }
}
