//! MetUM — the UK Met Office Unified Model, N320L70 global atmosphere.
//!
//! A 640 × 481 × 70 lat-lon grid decomposed over a 2-D processor grid, run
//! for 18 timesteps (2.5 simulated hours) exactly like the paper's
//! benchmark configuration: no output, the only I/O being the initial
//! 1.6 GB dump read. Each timestep performs the dynamics/advection halo
//! exchanges of many prognostic fields (wide halos for the semi-Lagrangian
//! scheme) and a Helmholtz solve dominated by tiny allreduces.
//!
//! "Warmed" time — what Figure 6 plots — is the wall time of the
//! `ATM_STEP` + `SOLVER` sections excluding the first timestep.
//!
//! Per-rank load is deliberately imbalanced: latitude rows near the poles
//! (the first and last processor rows) carry extra work from polar
//! filtering, reproducing the banded imbalance the paper's Figure 7 shows
//! across ranks 8..23 at 32 cores.

use crate::calib;
use crate::util::{grid_2d, ring_exchange};
use crate::Workload;
use sim_des::splitmix64;
use sim_mpi::{BlockProgram, CollOp, Group, JobSpec, Op, OpSource};

/// Grid dimensions (lon, lat, levels) of the N320L70 benchmark.
pub const NLON: usize = 640;
pub const NLAT: usize = 481;
pub const NLEV: usize = 70;

/// Section ids (order matches `section_names`).
pub const SEC_STARTUP: u16 = 0;
pub const SEC_FIRST_STEP: u16 = 1;
pub const SEC_ATM_STEP: u16 = 2;
pub const SEC_SOLVER: u16 = 3;

/// The MetUM workload.
#[derive(Debug, Clone, Copy)]
pub struct MetUm {
    /// Simulated timesteps (paper: 18 = 2.5 model hours).
    pub timesteps: usize,
}

impl Default for MetUm {
    fn default() -> Self {
        MetUm { timesteps: 18 }
    }
}

/// Serial work per timestep, expressed as seconds on one Vayu core.
/// Anchored so that the warmed 8-core Vayu run reproduces Fig 6's t8=963 s
/// over 17 warmed steps: 963 * 8 / 17 ≈ 453, less ~4% parallel overhead.
const STEP_VAYU_CORE_SECS: f64 = 331.0;
/// Fraction of a step in dynamics/advection (ATM_STEP) vs Helmholtz solve.
const ATM_FRAC: f64 = 0.72;
/// Memory-bound fraction of the dynamics.
const MU_ATM: f64 = 0.70;
/// Memory-bound fraction of the solver (bandwidth-hungry stencils).
const MU_SOLVER: f64 = 0.70;
/// Cache-shrink exponent.
const KAPPA: f64 = 0.08;
/// Dynamics halo-exchange rounds per step (dozens of prognostic fields,
/// several swap points each — the real model swaps bounds constantly).
const HALO_ROUNDS: usize = 30;
/// Effective fields bundled per halo exchange.
const FIELDS_PER_HALO: usize = 6;
/// Halo width in grid points (wide halos for semi-Lagrangian advection).
const HALO_WIDTH: usize = 4;
/// Helmholtz solver iterations per step.
const SOLVER_ITERS: usize = 60;
/// Polar-filter allgather payload per rank (bytes): a latitude row of
/// spectral coefficients for the filtered fields.
const POLAR_GATHER_BYTES: usize = 64 * NLEV * 8;
/// Extra work multiplier for the polar processor rows.
const POLAR_EXTRA: f64 = 0.22;
/// Amplitude of the per-rank hash imbalance (land/sea contrast).
const HASH_IMBALANCE: f64 = 0.06;

/// Startup dump size (paper: 1.6 GB read before the first step).
pub const DUMP_BYTES: u64 = 1_600_000_000;

impl MetUm {
    /// Per-rank work multiplier: polar rows heavier, plus a deterministic
    /// per-rank wiggle. Mean over ranks ≈ 1.
    fn imbalance(&self, rank: usize, px: usize, py: usize) -> f64 {
        // Longitude-major rank order (UM enumerates the EW dimension first).
        let y = rank / px;
        let polar = if py > 1 && (y == 0 || y == py - 1) {
            POLAR_EXTRA
        } else {
            0.0
        };
        let wiggle = (splitmix64(rank as u64 ^ 0xA7C0FFEE) % 1000) as f64 / 1000.0 - 0.5;
        let np = px * py;
        // Remove the mean of the polar bonus so total work is np-invariant.
        let polar_mean = if py > 1 {
            POLAR_EXTRA * 2.0 * px as f64 / np as f64
        } else {
            0.0
        };
        1.0 + polar - polar_mean + HASH_IMBALANCE * 2.0 * wiggle
    }

    fn compute(&self, share: f64, mu: f64, np: usize, w: f64) -> Op {
        let (flops, bytes) = calib::vayu_seconds_to_work(STEP_VAYU_CORE_SECS * share, mu);
        let shrink = calib::cache_shrink(np, KAPPA);
        Op::Compute {
            flops: flops * w / np as f64,
            bytes: bytes * w * shrink / np as f64,
        }
    }
}

impl Workload for MetUm {
    fn name(&self) -> String {
        format!("metum.n320l70.{}steps", self.timesteps)
    }

    fn describe(&self) -> Option<crate::WorkloadDesc> {
        Some(crate::WorkloadDesc::MetUm {
            timesteps: self.timesteps as u32,
        })
    }

    /// Per-rank resident footprint: replicated tables plus the grid share.
    /// With EC2's 20 GB nodes this forces >= 2 nodes at every rank count
    /// the paper ran, as observed ("memory constraints meant that it could
    /// not be run on fewer than 2 nodes").
    fn memory_per_rank_bytes(&self, np: usize) -> u64 {
        350_000_000 + 28_000_000_000 / np as u64
    }

    fn build(&self, np: usize) -> JobSpec {
        let (px, py) = grid_2d(np);
        // East-west halo: a latitude strip of the subdomain edge.
        let ew_bytes = (NLAT / py).max(1) * NLEV * 8 * HALO_WIDTH * FIELDS_PER_HALO;
        // North-south halo: a longitude strip.
        let ns_bytes = (NLON / px).max(1) * NLEV * 8 * HALO_WIDTH * FIELDS_PER_HALO;
        // Solver halo: single field, width 1.
        let solver_ew = (NLAT / py).max(1) * NLEV * 8;

        // Longitude-major rank order: rank = y * px + x. This puts EW-ring
        // neighbours at stride 1 (on-node under block placement) and the
        // big latitude-halo neighbours at stride px — across nodes once the
        // job spans them, exactly the traffic pattern that hurts DCC.
        let rank_of = move |x: usize, y: usize| (y * px + x) as u32;
        // Block 0 is startup I/O; blocks 1..=timesteps are the timesteps.
        // Only one timestep per rank is ever resident.
        let wl = *self;
        let sources = (0..np)
            .map(|r| {
                let (x, y) = (r % px, r / px);
                let w = wl.imbalance(r, px, py);
                OpSource::streamed(BlockProgram::new(move |k, ops: &mut Vec<Op>| {
                    if k == 0 {
                        // Startup: rank 0 reads the dump and scatters it.
                        ops.push(Op::SectionEnter(SEC_STARTUP));
                        if r == 0 {
                            ops.push(Op::FileRead { bytes: DUMP_BYTES });
                        }
                        if np > 1 {
                            ops.push(Op::Coll(CollOp::Scatter {
                                root: 0,
                                bytes_per_rank: (DUMP_BYTES / np as u64) as usize,
                            }));
                        }
                        // Grid/constants setup.
                        ops.push(wl.compute(0.08, 0.3, np, 1.0));
                        ops.push(Op::SectionExit(SEC_STARTUP));
                        return true;
                    }
                    if k > wl.timesteps {
                        return false;
                    }
                    let step = k - 1;
                    let (enter, exit) = if step == 0 {
                        (SEC_FIRST_STEP, SEC_FIRST_STEP)
                    } else {
                        (SEC_ATM_STEP, SEC_ATM_STEP)
                    };
                    // Dynamics/advection with halo swaps spread through it.
                    ops.push(Op::SectionEnter(enter));
                    let atm_chunk = ATM_FRAC / HALO_ROUNDS as f64;
                    for _ in 0..HALO_ROUNDS {
                        ops.push(wl.compute(atm_chunk, MU_ATM, np, w));
                        // Longitude ring (periodic): parity-ordered.
                        if px > 1 {
                            ring_exchange(
                                ops,
                                x,
                                r as u32,
                                rank_of((x + 1) % px, y),
                                rank_of((x + px - 1) % px, y),
                                ns_bytes,
                                1,
                            );
                        }
                        // Latitude chain (bounded at the poles).
                        if y + 1 < py {
                            ops.push(Op::Exchange {
                                partner: rank_of(x, y + 1),
                                send_bytes: ew_bytes,
                                recv_bytes: ew_bytes,
                                tag: 2,
                            });
                        }
                        if y > 0 {
                            ops.push(Op::Exchange {
                                partner: rank_of(x, y - 1),
                                send_bytes: ew_bytes,
                                recv_bytes: ew_bytes,
                                tag: 2,
                            });
                        }
                    }
                    // Polar filtering: the first and last processor rows
                    // gather their longitude row to damp the converging
                    // meridians (a row communicator, not world).
                    if px > 1 && py > 1 && (y == 0 || y == py - 1) {
                        let row = Group::Strided {
                            first: (y * px) as u32,
                            count: px as u32,
                            stride: 1,
                        };
                        ops.push(Op::GroupColl {
                            group: row,
                            op: CollOp::Allgather {
                                bytes_per_rank: POLAR_GATHER_BYTES,
                            },
                        });
                    }
                    ops.push(Op::SectionExit(exit));

                    // Helmholtz solver: tiny allreduces dominate.
                    let solver_sec = if step == 0 {
                        SEC_FIRST_STEP
                    } else {
                        SEC_SOLVER
                    };
                    ops.push(Op::SectionEnter(solver_sec));
                    let solver_chunk = (1.0 - ATM_FRAC - 0.0) / SOLVER_ITERS as f64;
                    for it in 0..SOLVER_ITERS {
                        ops.push(wl.compute(solver_chunk, MU_SOLVER, np, w));
                        if np > 1 {
                            ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                            // Every few iterations the preconditioner swaps
                            // a single-field halo.
                            if it % 3 == 0 && py > 1 {
                                if y + 1 < py {
                                    ops.push(Op::Exchange {
                                        partner: rank_of(x, y + 1),
                                        send_bytes: solver_ew,
                                        recv_bytes: solver_ew,
                                        tag: 3,
                                    });
                                }
                                if y > 0 {
                                    ops.push(Op::Exchange {
                                        partner: rank_of(x, y - 1),
                                        send_bytes: solver_ew,
                                        recv_bytes: solver_ew,
                                        tag: 3,
                                    });
                                }
                            }
                        }
                    }
                    ops.push(Op::SectionExit(solver_sec));
                    true
                }))
            })
            .collect();
        JobSpec::from_sources(
            self.name(),
            sources,
            vec!["startup_io", "first_step", "ATM_STEP", "SOLVER"],
        )
    }
}

/// The warmed execution time Figure 6 plots: everything except startup I/O
/// and the first (cache-cold) timestep.
pub fn warmed_secs(report: &sim_ipm::IpmReport) -> f64 {
    let atm = report
        .section("ATM_STEP")
        .map(|s| s.wall.mean)
        .unwrap_or(0.0);
    let solver = report.section("SOLVER").map(|s| s.wall.mean).unwrap_or(0.0);
    atm + solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_ipm::profile_run;
    use sim_mpi::SimConfig;
    use sim_platform::{presets, Strategy};

    fn run(
        cluster: &sim_platform::ClusterSpec,
        np: usize,
        strategy: Strategy,
    ) -> (sim_mpi::SimResult, sim_ipm::IpmReport) {
        let w = MetUm::default();
        let mut job = w.build(np);
        let cfg = SimConfig {
            strategy,
            ..Default::default()
        };
        profile_run(&mut job, cluster, &cfg).unwrap()
    }

    #[test]
    fn job_is_well_formed() {
        for np in [1usize, 2, 4, 8, 16, 32, 64] {
            MetUm::default().build(np).validate().unwrap();
        }
    }

    #[test]
    fn fig6_t8_vayu_near_963() {
        let (_, rep) = run(&presets::vayu(), 8, Strategy::Block);
        let t8 = warmed_secs(&rep);
        assert!((870.0..1060.0).contains(&t8), "Vayu warmed t8 = {t8}");
    }

    #[test]
    fn fig6_vayu_scales_nearly_linearly() {
        let (_, r8) = run(&presets::vayu(), 8, Strategy::Block);
        let (_, r64) = run(&presets::vayu(), 64, Strategy::Block);
        let sp = warmed_secs(&r8) / warmed_secs(&r64);
        assert!(sp > 5.5, "Vayu speedup 8->64: {sp} (paper: near 8)");
    }

    #[test]
    fn ec2_memory_forces_two_nodes() {
        let w = MetUm::default();
        let c = presets::ec2();
        for np in [8usize, 16] {
            let p = c
                .place(
                    np,
                    Strategy::BlockMemoryAware {
                        per_rank_bytes: w.memory_per_rank_bytes(np),
                    },
                )
                .unwrap();
            assert!(p.nodes_used() >= 2, "np={np} used {} nodes", p.nodes_used());
        }
    }

    #[test]
    fn table3_ratios_at_32() {
        // Paper Table III at 32 cores: rcomp(DCC) 1.37, rcomm(DCC) 6.71,
        // %comm DCC 42 vs Vayu 13, I/O 4.5 s (Vayu) vs 37.8 s (DCC).
        let (rv, _) = run(&presets::vayu(), 32, Strategy::Block);
        let (rd, _) = run(&presets::dcc(), 32, Strategy::Block);
        let rcomp = rd.comp_total_secs() / rv.comp_total_secs();
        assert!((1.2..1.7).contains(&rcomp), "rcomp {rcomp}");
        let rcomm = rd.comm_total_secs() / rv.comm_total_secs();
        assert!(rcomm > 2.5, "rcomm {rcomm} (paper 6.71)");
        assert!(rd.comm_pct() > rv.comm_pct() + 10.0);
        assert!(
            (3.5..6.5).contains(&rv.io_secs_max()),
            "vayu io {}",
            rv.io_secs_max()
        );
        assert!(
            (30.0..45.0).contains(&rd.io_secs_max()),
            "dcc io {}",
            rd.io_secs_max()
        );
    }

    #[test]
    fn ec2_4_beats_ec2_at_32() {
        // Fig 6 / Table III: spreading 32 ranks over 4 nodes (no HT) is
        // nearly twice as fast as packing them onto 2.
        let w = MetUm::default();
        let (r2, rep2) = run(
            &presets::ec2(),
            32,
            Strategy::BlockMemoryAware {
                per_rank_bytes: w.memory_per_rank_bytes(32),
            },
        );
        let (r4, rep4) = run(&presets::ec2(), 32, Strategy::Spread { nodes: 4 });
        assert_eq!(r2.placement.nodes_used(), 2);
        assert_eq!(r4.placement.nodes_used(), 4);
        let ratio = warmed_secs(&rep2) / warmed_secs(&rep4);
        assert!(
            (1.5..2.4).contains(&ratio),
            "EC2/EC2-4 ratio {ratio} (paper ~2)"
        );
    }

    #[test]
    fn polar_rows_create_imbalance() {
        let (_, rep) = run(&presets::vayu(), 32, Strategy::Block);
        let imbal = rep.global.imbalance_pct();
        assert!(
            (5.0..30.0).contains(&imbal),
            "imbalance {imbal}% (paper 13%)"
        );
    }
}
