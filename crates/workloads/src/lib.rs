//! `workloads` — op-program generators for every benchmark in the study.
//!
//! * [`osu`] — the OSU MPI latency and bandwidth micro-benchmarks (Figs 1-2)
//! * [`npb`] — the eight NAS Parallel Benchmarks, classes S-C (Fig 3, Fig 4,
//!   Table II)
//! * [`metum`] — the MetUM N320L70 global atmosphere benchmark (Fig 6,
//!   Table III, Fig 7)
//! * [`chaste`] — the Chaste rabbit-heart cardiac benchmark (Fig 5)
//!
//! Workloads compile to [`sim_mpi::JobSpec`]s; total work is anchored to the
//! paper's published absolute times (see [`calib`]) and communication
//! structure follows the reference implementations.

pub mod calib;
pub mod chaste;
pub mod checkpoint;
pub mod metum;
pub mod npb;
pub mod osu;
pub mod util;
pub mod verify;

pub use chaste::Chaste;
pub use checkpoint::{CheckpointPolicy, Checkpointed};
pub use metum::MetUm;
pub use npb::{Class, Kernel, Npb};
pub use osu::{OsuBandwidth, OsuLatency};
pub use verify::{Verified, VerifyPolicy};

/// A canonical, value-typed description of a workload — everything needed
/// to rebuild it. Content-addressed consumers (the advisor service's query
/// cache) key on this rather than on the display name, which for some
/// workloads does not encode every build parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadDesc {
    Npb { kernel: Kernel, class: Class },
    MetUm { timesteps: u32 },
    Chaste { timesteps: u32, cg_iters: u32 },
}

/// A benchmark that can be compiled to per-rank op programs.
pub trait Workload {
    /// Name used in reports ("cg.B", "metum.n320l70.18steps", ...).
    fn name(&self) -> String;

    /// Generate the job for `np` ranks.
    fn build(&self, np: usize) -> sim_mpi::JobSpec;

    /// Resident memory per rank, bytes (0 = negligible). Used for
    /// memory-aware placement (MetUM on EC2's 20 GB nodes).
    fn memory_per_rank_bytes(&self, _np: usize) -> u64 {
        0
    }

    /// Canonical descriptor, if this workload has one. `None` (the
    /// default) means the workload cannot be content-addressed — wrappers
    /// like [`Checkpointed`]/[`Verified`] and micro-benchmarks return
    /// `None` and callers fall back to direct simulation.
    fn describe(&self) -> Option<WorkloadDesc> {
        None
    }
}

#[cfg(test)]
mod proptests {
    //! Exhaustive small-space sweeps — deterministic and dependency-free.
    use super::*;

    const POW2_NPS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

    /// Every NPB kernel builds a structurally valid job at any legal
    /// rank count (class S for speed).
    #[test]
    fn npb_jobs_always_validate() {
        for kernel in Kernel::all() {
            for mut np in POW2_NPS {
                if matches!(kernel, Kernel::Bt | Kernel::Sp) {
                    // Snap to the nearest perfect square.
                    let q = (np as f64).sqrt().round().max(1.0) as usize;
                    np = q * q;
                }
                let mut job = Npb::new(kernel, Class::S).build(np);
                assert_eq!(job.np(), np);
                let v = job.validate();
                assert!(v.is_ok(), "{kernel:?} np={np}: {v:?}");
            }
        }
    }

    /// Applications build valid jobs at any power-of-two rank count.
    #[test]
    fn apps_always_validate() {
        for np in POW2_NPS {
            let m = MetUm { timesteps: 2 };
            assert!(m.build(np).validate().is_ok());
            let c = Chaste {
                timesteps: 2,
                cg_iters: 5,
            };
            assert!(c.build(np).validate().is_ok());
        }
    }

    /// Memory models decrease monotonically with np.
    #[test]
    fn memory_monotone() {
        for np in 1usize..63 {
            let m = MetUm::default();
            assert!(m.memory_per_rank_bytes(np) >= m.memory_per_rank_bytes(np + 1));
            let c = Chaste::default();
            assert!(c.memory_per_rank_bytes(np) >= c.memory_per_rank_bytes(np + 1));
        }
    }
}
