//! `workloads` — op-program generators for every benchmark in the study.
//!
//! * [`osu`] — the OSU MPI latency and bandwidth micro-benchmarks (Figs 1-2)
//! * [`npb`] — the eight NAS Parallel Benchmarks, classes S-C (Fig 3, Fig 4,
//!   Table II)
//! * [`metum`] — the MetUM N320L70 global atmosphere benchmark (Fig 6,
//!   Table III, Fig 7)
//! * [`chaste`] — the Chaste rabbit-heart cardiac benchmark (Fig 5)
//!
//! Workloads compile to [`sim_mpi::JobSpec`]s; total work is anchored to the
//! paper's published absolute times (see [`calib`]) and communication
//! structure follows the reference implementations.

pub mod calib;
pub mod chaste;
pub mod metum;
pub mod npb;
pub mod osu;
pub mod util;

pub use chaste::Chaste;
pub use metum::MetUm;
pub use npb::{Class, Kernel, Npb};
pub use osu::{OsuBandwidth, OsuLatency};

/// A benchmark that can be compiled to per-rank op programs.
pub trait Workload {
    /// Name used in reports ("cg.B", "metum.n320l70.18steps", ...).
    fn name(&self) -> String;

    /// Generate the job for `np` ranks.
    fn build(&self, np: usize) -> sim_mpi::JobSpec;

    /// Resident memory per rank, bytes (0 = negligible). Used for
    /// memory-aware placement (MetUM on EC2's 20 GB nodes).
    fn memory_per_rank_bytes(&self, _np: usize) -> u64 {
        0
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pow2_np() -> impl Strategy<Value = usize> {
        (0u32..7).prop_map(|k| 1usize << k)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every NPB kernel builds a structurally valid job at any legal
        /// rank count (class S for speed).
        #[test]
        fn npb_jobs_always_validate(np in pow2_np(), kidx in 0usize..8) {
            let kernel = Kernel::all()[kidx];
            let np = if matches!(kernel, Kernel::Bt | Kernel::Sp) {
                // Snap to the nearest perfect square.
                let q = (np as f64).sqrt().round().max(1.0) as usize;
                q * q
            } else {
                np
            };
            let job = Npb::new(kernel, Class::S).build(np);
            prop_assert_eq!(job.np(), np);
            prop_assert!(job.validate().is_ok(), "{:?}", job.validate());
        }

        /// Applications build valid jobs at any power-of-two rank count.
        #[test]
        fn apps_always_validate(np in pow2_np()) {
            let m = MetUm { timesteps: 2 };
            prop_assert!(m.build(np).validate().is_ok());
            let c = Chaste { timesteps: 2, cg_iters: 5 };
            prop_assert!(c.build(np).validate().is_ok());
        }

        /// Memory models decrease monotonically with np.
        #[test]
        fn memory_monotone(np in 1usize..63) {
            let m = MetUm::default();
            prop_assert!(m.memory_per_rank_bytes(np) >= m.memory_per_rank_bytes(np + 1));
            let c = Chaste::default();
            prop_assert!(c.memory_per_rank_bytes(np) >= c.memory_per_rank_bytes(np + 1));
        }
    }
}
