//! Decomposition helpers shared by the workload generators.

/// Factor `p` into a near-square 2-D processor grid `(px, py)` with
/// `px * py == p` and `px >= py` (NPB-style powers first).
pub fn grid_2d(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1);
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = (p / d, d);
        }
        d += 1;
    }
    best
}

/// Factor `p` into a near-cubic 3-D processor grid `(px, py, pz)` with
/// `px >= py >= pz`.
pub fn grid_3d(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut score = f64::INFINITY;
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let (b, c) = grid_2d(p / a);
            let dims = [a as f64, b as f64, c as f64];
            let s = dims.iter().fold(0.0f64, |m, d| m.max(*d))
                / dims.iter().fold(f64::INFINITY, |m, d| m.min(*d));
            if s < score {
                score = s;
                best = sorted3(a, b, c);
            }
        }
        a += 1;
    }
    best
}

fn sorted3(a: usize, b: usize, c: usize) -> (usize, usize, usize) {
    let mut v = [a, b, c];
    v.sort_unstable_by(|x, y| y.cmp(x));
    (v[0], v[1], v[2])
}

/// Rank of grid coordinate `(x, y)` in a row-major `px` × `py` grid.
pub fn rank_of_2d(x: usize, y: usize, py: usize) -> u32 {
    (x * py + y) as u32
}

/// Grid coordinate of `rank` in a row-major `px` × `py` grid.
pub fn coord_of_2d(rank: usize, py: usize) -> (usize, usize) {
    (rank / py, rank % py)
}

/// Split `n` items over `parts` as evenly as possible; returns the size of
/// `part` (0-indexed). First `n % parts` parts get one extra.
pub fn block_size(n: usize, parts: usize, part: usize) -> usize {
    let base = n / parts;
    if part < n % parts {
        base + 1
    } else {
        base
    }
}

/// Push a deadlock-free pair of halo `Exchange` ops around a periodic ring:
/// exchange with the next and previous members, parity-ordered (even
/// positions talk forward first) so that a ring of blocking pairwise
/// exchanges can never produce a circular wait.
pub fn ring_exchange(
    ops: &mut Vec<sim_mpi::Op>,
    pos: usize,
    me: u32,
    next: u32,
    prev: u32,
    bytes: usize,
    tag: u32,
) {
    if next == me && prev == me {
        return;
    }
    let fwd = sim_mpi::Op::Exchange {
        partner: next,
        send_bytes: bytes,
        recv_bytes: bytes,
        tag,
    };
    let bwd = sim_mpi::Op::Exchange {
        partner: prev,
        send_bytes: bytes,
        recv_bytes: bytes,
        tag,
    };
    if pos.is_multiple_of(2) {
        ops.push(fwd);
        ops.push(bwd);
    } else {
        ops.push(bwd);
        ops.push(fwd);
    }
}

/// Integer square root check: `Some(q)` if `p == q*q`.
pub fn perfect_square(p: usize) -> Option<usize> {
    let q = (p as f64).sqrt().round() as usize;
    if q * q == p {
        Some(q)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_2d_near_square() {
        assert_eq!(grid_2d(1), (1, 1));
        assert_eq!(grid_2d(2), (2, 1));
        assert_eq!(grid_2d(4), (2, 2));
        assert_eq!(grid_2d(8), (4, 2));
        assert_eq!(grid_2d(16), (4, 4));
        assert_eq!(grid_2d(32), (8, 4));
        assert_eq!(grid_2d(64), (8, 8));
        assert_eq!(grid_2d(36), (6, 6));
        assert_eq!(grid_2d(12), (4, 3));
    }

    #[test]
    fn grid_3d_products_hold() {
        for p in [1usize, 2, 4, 8, 16, 32, 64, 27, 12] {
            let (a, b, c) = grid_3d(p);
            assert_eq!(a * b * c, p, "p={p}");
            assert!(a >= b && b >= c);
        }
        assert_eq!(grid_3d(8), (2, 2, 2));
        assert_eq!(grid_3d(64), (4, 4, 4));
    }

    #[test]
    fn coords_roundtrip() {
        let (px, py) = (4, 3);
        for x in 0..px {
            for y in 0..py {
                let r = rank_of_2d(x, y, py);
                assert_eq!(coord_of_2d(r as usize, py), (x, y));
            }
        }
    }

    #[test]
    fn block_sizes_sum() {
        for (n, parts) in [(10, 3), (7, 7), (5, 8), (100, 6)] {
            let total: usize = (0..parts).map(|i| block_size(n, parts, i)).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn perfect_squares() {
        assert_eq!(perfect_square(36), Some(6));
        assert_eq!(perfect_square(64), Some(8));
        assert_eq!(perfect_square(12), None);
        assert_eq!(perfect_square(1), Some(1));
    }
}
