//! ABFT verification cuts as a workload wrapper.
//!
//! [`Verified`] wraps any [`Workload`] and splices an [`Op::Verify`] into
//! every rank's op stream after every `every_colls`-th world collective —
//! the same consistent-cut boundary [`crate::Checkpointed`] uses, mirroring
//! how checksum-augmented solvers verify at iteration-block boundaries
//! (see `numerics::cg_abft`). At each cut the engine runs a barrier
//! plus the checksum pass and adjudicates any silent corruption since the
//! previous cut; a clean cut becomes the rollback target for
//! `RecoveryStrategy::AbftRollback` and `RecoveryStrategy::ShrinkSpare`.
//!
//! The wrapper streams, and the two wrappers compose in either order:
//! neither counts the other's spliced ops as collectives, so
//! `Checkpointed(Verified(w))` keeps both cut cadences independent.

use crate::Workload;
use numerics::{abft_iter_flops, cg_iter_flops, ABFT_CHECK_INTERVAL};
use sim_mpi::{JobSpec, Op, OpSource, Program};

/// When and how expensively to verify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyPolicy {
    /// Verify after every this-many world collectives (>= 1). Workload
    /// timesteps end in a world collective, so this is "every k timesteps"
    /// for the codes in the study.
    pub every_colls: u64,
    /// Cost of one rank's checksum pass, in flops.
    pub flops: f64,
    /// Bytes of in-memory state per rank a spare node must receive on a
    /// shrink recovery.
    pub state_bytes: u64,
}

impl VerifyPolicy {
    pub fn new(every_colls: u64, flops: f64, state_bytes: u64) -> Self {
        assert!(every_colls >= 1, "verify interval must be >= 1");
        assert!(flops >= 0.0, "verify flops must be non-negative");
        VerifyPolicy {
            every_colls,
            flops,
            state_bytes,
        }
    }

    /// Policy for a checksum-augmented CG solve on an `n`-vector state with
    /// `nnz` matrix non-zeros: the per-cut check costs the ABFT overhead of
    /// one check interval's worth of iterations, and the state a spare must
    /// receive is the solver's working set (x, r, p, Ap as f64).
    pub fn for_cg(every_colls: u64, n: usize, nnz: usize) -> Self {
        let base = cg_iter_flops(n, nnz);
        let extra = (abft_iter_flops(n, nnz) - base) * ABFT_CHECK_INTERVAL as f64;
        VerifyPolicy::new(every_colls, extra, (4 * n * 8) as u64)
    }
}

/// A workload with ABFT verification cuts spliced in.
pub struct Verified<'a> {
    pub inner: &'a dyn Workload,
    pub policy: VerifyPolicy,
}

impl<'a> Verified<'a> {
    pub fn new(inner: &'a dyn Workload, policy: VerifyPolicy) -> Self {
        Verified { inner, policy }
    }
}

impl Workload for Verified<'_> {
    fn name(&self) -> String {
        format!("{}+abft/{}", self.inner.name(), self.policy.every_colls)
    }

    fn build(&self, np: usize) -> JobSpec {
        let inner = self.inner.build(np);
        let policy = self.policy;
        let sources = inner
            .sources
            .into_iter()
            .map(|s| {
                OpSource::streamed(VerifyProgram {
                    inner: s,
                    policy,
                    seen: 0,
                    queued: false,
                })
            })
            .collect();
        JobSpec::from_sources(self.name(), sources, inner.meta.section_names)
    }

    fn memory_per_rank_bytes(&self, np: usize) -> u64 {
        self.inner.memory_per_rank_bytes(np)
    }
}

/// Streams the inner source, counting world collectives and emitting an
/// [`Op::Verify`] right after every `every_colls`-th one.
struct VerifyProgram {
    inner: OpSource,
    policy: VerifyPolicy,
    /// World collectives seen since the last verify.
    seen: u64,
    /// A verify is due before the next inner op.
    queued: bool,
}

impl Program for VerifyProgram {
    fn next_op(&mut self) -> Option<Op> {
        if self.queued {
            self.queued = false;
            return Some(Op::Verify {
                flops: self.policy.flops,
                state_bytes: self.policy.state_bytes,
            });
        }
        let op = self.inner.next_op()?;
        if matches!(op, Op::Coll(_)) {
            self.seen += 1;
            if self.seen == self.policy.every_colls {
                self.seen = 0;
                self.queued = true;
            }
        }
        Some(op)
    }

    fn rewind(&mut self) {
        self.inner.rewind();
        self.seen = 0;
        self.queued = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckpointPolicy, Checkpointed, Class, Kernel, MetUm, Npb};

    #[test]
    fn verifies_land_after_every_kth_world_collective() {
        let w = Npb::new(Kernel::Cg, Class::S);
        let vw = Verified::new(&w, VerifyPolicy::new(5, 1e6, 1 << 20));
        let mut job = vw.build(4);
        for r in 0..4 {
            let ops = job.materialize_rank(r);
            let colls = ops.iter().filter(|o| matches!(o, Op::Coll(_))).count();
            let cuts = ops
                .iter()
                .filter(|o| matches!(o, Op::Verify { .. }))
                .count();
            assert_eq!(cuts, colls / 5, "rank {r}");
        }
        let ops = job.materialize_rank(0);
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::Verify { .. }) {
                assert!(matches!(ops[i - 1], Op::Coll(_)), "op {i}");
            }
        }
    }

    #[test]
    fn verified_jobs_still_validate_and_stream() {
        for np in [1usize, 2, 4, 8] {
            let w = MetUm { timesteps: 3 };
            let vw = Verified::new(&w, VerifyPolicy::new(2, 1e6, 1 << 22));
            let mut job = vw.build(np);
            assert!(job.is_fully_streamed());
            let v = job.validate();
            assert!(v.is_ok(), "np={np}: {v:?}");
        }
    }

    #[test]
    fn rewind_reproduces_the_spliced_stream() {
        let w = Npb::new(Kernel::Mg, Class::S);
        let vw = Verified::new(&w, VerifyPolicy::new(3, 1e6, 4096));
        let mut job = vw.build(2);
        let first = job.materialize_rank(1);
        let again = job.materialize_rank(1);
        assert_eq!(first, again);
        assert!(first.iter().any(|o| matches!(o, Op::Verify { .. })));
    }

    #[test]
    fn composes_with_checkpointing_in_either_order() {
        let w = Npb::new(Kernel::Cg, Class::S);
        let vp = VerifyPolicy::new(4, 1e6, 1 << 20);
        let cp = CheckpointPolicy::new(6, 1 << 20);
        let vw = Verified::new(&w, vp);
        let both = Checkpointed::new(&vw, cp);
        let mut job = both.build(4);
        assert!(job.validate().is_ok());
        let ops = job.materialize_rank(0);
        let colls = ops.iter().filter(|o| matches!(o, Op::Coll(_))).count();
        let cuts = ops
            .iter()
            .filter(|o| matches!(o, Op::Verify { .. }))
            .count();
        let ckpts = ops
            .iter()
            .filter(|o| matches!(o, Op::Checkpoint { .. }))
            .count();
        // Neither wrapper counts the other's ops as collectives, so both
        // cadences stay anchored to the inner workload's collectives.
        assert_eq!(cuts, colls / 4);
        assert_eq!(ckpts, colls / 6);
    }

    #[test]
    fn cg_policy_scales_with_problem_size() {
        let small = VerifyPolicy::for_cg(1, 1_000, 10_000);
        let big = VerifyPolicy::for_cg(1, 100_000, 1_000_000);
        assert!(big.flops > small.flops);
        assert!(big.state_bytes > small.state_bytes);
        assert!(small.flops > 0.0);
    }
}
