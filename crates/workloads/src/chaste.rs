//! Chaste — multi-scale cardiac electrophysiology (v2.1 benchmark).
//!
//! The paper's configuration: a high-resolution rabbit heart mesh (~4 M
//! nodes, 24 M elements, a 1.4 GB mesh file), 250 timesteps of 2.0 ms of
//! electrical activity, with a conjugate-gradient linear solve (the PETSc
//! "KSp" section) dominating every timestep. The KSp communication is
//! "entirely 4-byte all-reduce operations" (paper §V-C1) plus the SpMV
//! halo; mesh input and the output routine are separate profiled sections.

use crate::calib;
use crate::util::ring_exchange;
use crate::Workload;
use sim_des::splitmix64;
use sim_mpi::{BlockProgram, CollOp, JobSpec, Op, OpSource};

/// Section ids.
pub const SEC_INPUT: u16 = 0;
pub const SEC_ASSEMBLY: u16 = 1;
pub const SEC_KSP: u16 = 2;
pub const SEC_OUTPUT: u16 = 3;

/// Mesh size.
pub const MESH_NODES: u64 = 4_000_000;
pub const MESH_BYTES: u64 = 1_400_000_000;

/// The Chaste cardiac workload.
#[derive(Debug, Clone, Copy)]
pub struct Chaste {
    /// Timesteps (paper: 250 = 2.0 ms at 8 µs steps).
    pub timesteps: usize,
    /// CG iterations per linear solve.
    pub cg_iters: usize,
}

impl Default for Chaste {
    fn default() -> Self {
        Chaste {
            timesteps: 250,
            cg_iters: 45,
        }
    }
}

/// KSp serial work per timestep (seconds on one Vayu core), anchored to
/// Fig 5's Vayu t8 = 579 s over 250 steps with ~8% parallel overhead at 8
/// ranks.
const KSP_STEP_VAYU_CORE_SECS: f64 = 14.8;
/// Assembly + ODE + the rest of a timestep, same units (Fig 5: total t8 =
/// 1017 on Vayu; minus KSp, input and output leaves ~338 s / 250 steps).
const ASSEMBLY_STEP_VAYU_CORE_SECS: f64 = 11.6;
/// Mesh input: partition/parse compute at 8 ranks (seconds, Vayu), largely
/// non-scaling ("scaled identically on both systems, 1.25 speedup at 64
/// cores over 8").
const INPUT_SERIAL_SECS: f64 = 44.0;
const INPUT_SCALABLE_8X_SECS: f64 = 96.0;
/// Output volume gathered to rank 0 and written.
const OUTPUT_BYTES: u64 = 60_000_000;
/// Memory-bound fractions.
const MU_KSP: f64 = 0.88;
const MU_ASSEMBLY: f64 = 0.60;
const KAPPA: f64 = 0.25;
/// Mesh-partition imbalance amplitude.
const HASH_IMBALANCE: f64 = 0.08;

impl Chaste {
    fn imbalance(&self, rank: usize) -> f64 {
        let wiggle = (splitmix64(rank as u64 ^ 0xCAFE_D00D) % 1000) as f64 / 1000.0 - 0.5;
        1.0 + HASH_IMBALANCE * 2.0 * wiggle
    }

    fn compute(&self, core_secs: f64, mu: f64, np: usize, w: f64) -> Op {
        let (flops, bytes) = calib::vayu_seconds_to_work(core_secs, mu);
        let shrink = calib::cache_shrink(np, KAPPA);
        Op::Compute {
            flops: flops * w / np as f64,
            bytes: bytes * w * shrink / np as f64,
        }
    }
}

impl Workload for Chaste {
    fn name(&self) -> String {
        format!("chaste.rabbit.{}steps", self.timesteps)
    }

    fn describe(&self) -> Option<crate::WorkloadDesc> {
        Some(crate::WorkloadDesc::Chaste {
            timesteps: self.timesteps as u32,
            cg_iters: self.cg_iters as u32,
        })
    }

    /// Paper: "rather surprisingly, its memory usage is slightly greater
    /// than that of the MetUM benchmark".
    fn memory_per_rank_bytes(&self, np: usize) -> u64 {
        400_000_000 + 30_000_000_000 / np as u64
    }

    fn build(&self, np: usize) -> JobSpec {
        // Partition neighbours: a mesh partition talks to a handful of
        // graph neighbours; model as a ring of 2 plus one long-range pair.
        // SpMV halo size: the partition surface, ~(N/p)^(2/3) nodes with ~3
        // doubles each.
        let surface = ((MESH_NODES as f64 / np as f64).powf(2.0 / 3.0) * 24.0) as usize;
        let halo_bytes = surface.max(64);

        // Block 0 is mesh input, blocks 1..=timesteps are the timesteps, and
        // block timesteps+1 is the gathered output.
        let wl = *self;
        let sources = (0..np)
            .map(|r| {
                let w = wl.imbalance(r);
                let next = ((r + 1) % np) as u32;
                let prev = ((r + np - 1) % np) as u32;
                OpSource::streamed(BlockProgram::new(move |k, ops: &mut Vec<Op>| {
                    if k == 0 {
                        // --- Mesh input ---
                        ops.push(Op::SectionEnter(SEC_INPUT));
                        if r == 0 {
                            ops.push(Op::FileRead { bytes: MESH_BYTES });
                        }
                        if np > 1 {
                            ops.push(Op::Coll(CollOp::Scatter {
                                root: 0,
                                bytes_per_rank: (MESH_BYTES / np as u64) as usize,
                            }));
                        }
                        // Non-scaling parse + scaling partition build.
                        ops.push(Op::Compute {
                            flops: calib::vayu_seconds_to_work(INPUT_SERIAL_SECS, 0.3).0,
                            bytes: calib::vayu_seconds_to_work(INPUT_SERIAL_SECS, 0.3).1,
                        });
                        ops.push(wl.compute(INPUT_SCALABLE_8X_SECS, 0.5, np, w));
                        ops.push(Op::SectionExit(SEC_INPUT));
                    } else if k <= wl.timesteps {
                        // --- Assembly + cell-model ODEs ---
                        ops.push(Op::SectionEnter(SEC_ASSEMBLY));
                        ops.push(wl.compute(ASSEMBLY_STEP_VAYU_CORE_SECS, MU_ASSEMBLY, np, w));
                        if np > 1 {
                            ring_exchange(ops, r, r as u32, next, prev, halo_bytes, 1);
                        }
                        ops.push(Op::SectionExit(SEC_ASSEMBLY));

                        // --- KSp linear solve ---
                        ops.push(Op::SectionEnter(SEC_KSP));
                        let per_iter = KSP_STEP_VAYU_CORE_SECS / wl.cg_iters as f64;
                        for _ in 0..wl.cg_iters {
                            ops.push(wl.compute(per_iter, MU_KSP, np, w));
                            if np > 1 {
                                ring_exchange(ops, r, r as u32, next, prev, halo_bytes, 2);
                            }
                            if np > 1 {
                                // The paper's signature: 4-byte allreduces.
                                ops.push(Op::Coll(CollOp::Allreduce { bytes: 4 }));
                                ops.push(Op::Coll(CollOp::Allreduce { bytes: 4 }));
                            }
                        }
                        ops.push(Op::SectionExit(SEC_KSP));
                    } else if k == wl.timesteps + 1 {
                        // --- Output ---
                        ops.push(Op::SectionEnter(SEC_OUTPUT));
                        if np > 1 {
                            ops.push(Op::Coll(CollOp::Gather {
                                root: 0,
                                bytes_per_rank: (OUTPUT_BYTES / np as u64) as usize,
                            }));
                        }
                        if r == 0 {
                            ops.push(Op::FileWrite {
                                bytes: OUTPUT_BYTES,
                            });
                        }
                        ops.push(Op::SectionExit(SEC_OUTPUT));
                    } else {
                        return false;
                    }
                    true
                }))
            })
            .collect();
        JobSpec::from_sources(
            self.name(),
            sources,
            vec!["input_mesh", "assembly", "KSp", "output"],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_ipm::profile_run;
    use sim_mpi::SimConfig;
    use sim_platform::presets;

    fn run(
        cluster: &sim_platform::ClusterSpec,
        np: usize,
    ) -> (sim_mpi::SimResult, sim_ipm::IpmReport) {
        let mut job = Chaste::default().build(np);
        profile_run(&mut job, cluster, &SimConfig::default()).unwrap()
    }

    #[test]
    fn job_is_well_formed() {
        for np in [1usize, 2, 8, 32] {
            Chaste::default().build(np).validate().unwrap();
        }
    }

    #[test]
    fn fig5_t8_anchors() {
        let (_, rep) = run(&presets::vayu(), 8);
        let ksp = rep.section("KSp").unwrap().wall.mean;
        let total = rep.elapsed;
        assert!(
            (520.0..660.0).contains(&ksp),
            "Vayu KSp t8 = {ksp} (paper 579)"
        );
        assert!(
            (900.0..1150.0).contains(&total),
            "Vayu total t8 = {total} (paper 1017)"
        );
    }

    #[test]
    fn fig5_dcc_slower_and_flatter() {
        let (_, v8) = run(&presets::vayu(), 8);
        let (_, d8) = run(&presets::dcc(), 8);
        let ratio = d8.elapsed / v8.elapsed;
        assert!(
            (1.3..2.0).contains(&ratio),
            "DCC/Vayu t8 ratio {ratio} (paper ~1.57)"
        );
        // KSp section drives the total on both platforms.
        for rep in [&v8, &d8] {
            let ksp = rep.section("KSp").unwrap().wall.mean;
            assert!(ksp / rep.elapsed > 0.45, "KSp {} of {}", ksp, rep.elapsed);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn ipm_comm_pct_at_32() {
        // Paper: 48% comm on DCC at 32 cores, 11% on Vayu.
        let (rv, _) = run(&presets::vayu(), 32);
        let (rd, _) = run(&presets::dcc(), 32);
        assert!(rv.comm_pct() < 25.0, "Vayu %comm {}", rv.comm_pct());
        assert!(rd.comm_pct() > 30.0, "DCC %comm {}", rd.comm_pct());
        assert!(rd.comm_pct() > rv.comm_pct() + 15.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn ksp_comm_is_collective_dominated() {
        let (_, rep) = run(&presets::dcc(), 32);
        let ksp = rep.section("KSp").unwrap();
        assert!(
            ksp.collective_frac() > 0.5,
            "KSp collective fraction {}",
            ksp.collective_frac()
        );
        // And the top call is the 4-byte allreduce.
        let top = &ksp.calls[0];
        assert_eq!(top.call, sim_mpi::MpiKind::Allreduce);
        assert_eq!(top.bucket_bytes, 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn vayu_keeps_scaling_past_dcc() {
        let (_, v8) = run(&presets::vayu(), 8);
        let (_, v64) = run(&presets::vayu(), 64);
        let (_, d8) = run(&presets::dcc(), 8);
        let (_, d64) = run(&presets::dcc(), 64);
        let v_speedup =
            v8.section("KSp").unwrap().wall.mean / v64.section("KSp").unwrap().wall.mean;
        let d_speedup =
            d8.section("KSp").unwrap().wall.mean / d64.section("KSp").unwrap().wall.mean;
        assert!(
            v_speedup > d_speedup + 0.5,
            "vayu {v_speedup} dcc {d_speedup}"
        );
        assert!(v_speedup > 3.0, "vayu KSp speedup 8->64 {v_speedup}");
    }
}
