//! MG — multigrid V-cycles.
//!
//! A 3-D grid decomposed over a 3-D processor grid; each V-cycle visits
//! every level twice, exchanging face halos with the six neighbours. Halo
//! areas shrink 4x per level, so the deep-cycle messages are tiny and
//! latency-dominated, while the fine levels move real data.

use super::{compute_chunk, Class, Kernel};
use crate::util::{grid_3d, ring_exchange};
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

/// Grid edge and iterations: (n, niter).
pub fn dims(class: Class) -> (usize, usize) {
    match class {
        Class::S => (32, 4),
        Class::W => (128, 4),
        Class::A => (256, 4),
        Class::B => (256, 20),
        Class::C => (512, 20),
    }
}

pub fn build(class: Class, np: usize) -> JobSpec {
    let (n, niter) = dims(class);
    let (px, py, pz) = grid_3d(np);
    let levels = (n.trailing_zeros() as usize).saturating_sub(1).max(1);
    // Work weights per level: 8^-depth, normalized. A V-cycle visits each
    // level going down and up; fold both visits into one weighted chunk per
    // level per direction.
    let weights: Vec<f64> = (0..levels).map(|d| 0.125f64.powi(d as i32)).collect();
    // Normalise so one full run (down + up sweeps x niter) sums to 1.
    let wsum: f64 = 2.0 * weights.iter().sum::<f64>() * niter as f64;
    // Per-level compute chunks, derived once: every V-cycle charges the
    // same weighted chunk at a given depth.
    let level_chunks: Vec<Op> = weights
        .iter()
        .map(|w| compute_chunk(Kernel::Mg, class, np, w / wsum))
        .collect();

    // Rank coordinates in the (px, py, pz) grid; row-major.
    let coord = move |r: usize| -> (usize, usize, usize) { (r / (py * pz), (r / pz) % py, r % pz) };
    let rank_of = move |x: usize, y: usize, z: usize| -> u32 { (x * py * pz + y * pz + z) as u32 };

    // One block per V-cycle (down-sweep + up-sweep + norm reduction).
    let sources = (0..np)
        .map(|r| {
            let (x, y, z) = coord(r);
            let level_chunks = level_chunks.clone();
            // Neighbour exchange along each decomposed dimension at `level`.
            let halo = move |ops: &mut Vec<Op>, depth: usize| {
                let nl = (n >> depth).max(2);
                // Face sizes per direction (bytes, f64 cells).
                let fx = ((nl / py).max(1) * (nl / pz).max(1) * 8).max(8);
                let fy = ((nl / px).max(1) * (nl / pz).max(1) * 8).max(8);
                let fz = ((nl / px).max(1) * (nl / py).max(1) * 8).max(8);
                // Periodic torus neighbours (NPB MG has periodic
                // boundaries); parity-ordered ring exchanges are
                // deadlock-free around each ring.
                let me = r as u32;
                let tag = 10 + depth as u32;
                if px > 1 {
                    ring_exchange(
                        ops,
                        x,
                        me,
                        rank_of((x + 1) % px, y, z),
                        rank_of((x + px - 1) % px, y, z),
                        fx,
                        tag,
                    );
                }
                if py > 1 {
                    ring_exchange(
                        ops,
                        y,
                        me,
                        rank_of(x, (y + 1) % py, z),
                        rank_of(x, (y + py - 1) % py, z),
                        fy,
                        tag + 100,
                    );
                }
                if pz > 1 {
                    ring_exchange(
                        ops,
                        z,
                        me,
                        rank_of(x, y, (z + 1) % pz),
                        rank_of(x, y, (z + pz - 1) % pz),
                        fz,
                        tag + 200,
                    );
                }
            };
            OpSource::cyclic(CyclicProgram::new(niter, |ops| {
                // Down-sweep then up-sweep.
                for (depth, &chunk) in level_chunks.iter().enumerate() {
                    ops.push(chunk);
                    halo(ops, depth);
                }
                for (depth, &chunk) in level_chunks.iter().enumerate().rev() {
                    ops.push(chunk);
                    halo(ops, depth);
                }
                // Residual-norm reduction per iteration.
                if np > 1 {
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                }
            }))
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    #[test]
    fn builds_and_validates() {
        for np in [1usize, 2, 4, 8, 16, 32, 64] {
            build(Class::S, np).validate().unwrap();
        }
    }

    #[test]
    fn mg_scales_on_vayu_poorly_on_dcc() {
        let t = |c: &sim_platform::ClusterSpec, np: usize| {
            run_job(
                &mut build(Class::B, np),
                c,
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs()
        };
        let vayu_sp = t(&presets::vayu(), 1) / t(&presets::vayu(), 32);
        let dcc_sp = t(&presets::dcc(), 1) / t(&presets::dcc(), 32);
        assert!(vayu_sp > 14.0, "vayu {vayu_sp}");
        assert!(dcc_sp < vayu_sp, "dcc {dcc_sp} vayu {vayu_sp}");
    }
}
