//! BT and SP — the block-tridiagonal and scalar-pentadiagonal
//! pseudo-applications.
//!
//! Both use the square multi-partition decomposition (np must be a perfect
//! square) and sweep the three spatial dimensions with ADI-style solves,
//! exchanging partition faces with ring neighbours per sweep. SP iterates
//! twice as often with less work per step, so its communication-to-compute
//! ratio is worse — visible in the paper's Fig 4 where SP tracks BT but a
//! little lower on the virtualized platforms.

use super::{compute_chunk, Class, Kernel};
use crate::util::perfect_square;
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

/// Grid edge and iterations: (n, niter).
pub fn dims(kernel: Kernel, class: Class) -> (usize, usize) {
    match (kernel, class) {
        (Kernel::Bt, Class::S) => (12, 60),
        (Kernel::Bt, Class::W) => (24, 200),
        (Kernel::Bt, Class::A) => (64, 200),
        (Kernel::Bt, Class::B) => (102, 200),
        (Kernel::Bt, Class::C) => (162, 200),
        (Kernel::Sp, Class::S) => (12, 100),
        (Kernel::Sp, Class::W) => (36, 400),
        (Kernel::Sp, Class::A) => (64, 400),
        (Kernel::Sp, Class::B) => (102, 400),
        (Kernel::Sp, Class::C) => (162, 400),
        _ => panic!("bt_sp::dims called for {kernel:?}"),
    }
}

pub fn build(kernel: Kernel, class: Class, np: usize) -> JobSpec {
    assert!(matches!(kernel, Kernel::Bt | Kernel::Sp));
    let q = perfect_square(np).expect("BT/SP require square process counts");
    let (n, niter) = dims(kernel, class);
    // Face exchange bytes per sweep direction: 5 variables on the partition
    // face. SP's pentadiagonal solves move ~1.5x the face data of BT's
    // block solves relative to work.
    let face_cells = (n * n / np.max(1)).max(1);
    let factor = if kernel == Kernel::Bt { 2 } else { 3 };
    let msg = face_cells * 5 * 8 * factor;
    // Per-iteration split: 3 directional solves + rhs.
    let share = 1.0 / (niter as f64 * 4.0);
    let chunk = compute_chunk(kernel, class, np, share);

    let coord = move |r: usize| (r / q, r % q);
    let rank_of = move |i: usize, j: usize| (i * q + j) as u32;

    // A ring shift: send the face to the next rank of the ring, receive
    // from the previous. Parity ordering (even positions send first) keeps
    // rendezvous transfers deadlock-free, exactly like the real codes'
    // ordered sendrecv pairs.
    let ring_shift =
        |ops: &mut Vec<Op>, pos: usize, next: u32, prev: u32, me: u32, bytes: usize, tag: u32| {
            if next == me {
                return;
            }
            let send = Op::Send {
                to: next,
                bytes,
                tag,
            };
            let recv = Op::Recv {
                from: prev,
                bytes,
                tag,
            };
            if pos.is_multiple_of(2) {
                ops.push(send);
                ops.push(recv);
            } else {
                ops.push(recv);
                ops.push(send);
            }
        };

    // One block per ADI iteration, plus a final verification block.
    let sources = (0..np)
        .map(|r| {
            let (i, j) = coord(r);
            let me = r as u32;
            OpSource::cyclic(
                CyclicProgram::new(niter, |ops| {
                    // RHS computation.
                    ops.push(chunk);
                    if q > 1 {
                        // X sweep: forward ring shift along the row.
                        ring_shift(
                            ops,
                            j,
                            rank_of(i, (j + 1) % q),
                            rank_of(i, (j + q - 1) % q),
                            me,
                            msg,
                            1,
                        );
                        ops.push(chunk);
                        // Y sweep: forward ring shift along the column.
                        ring_shift(
                            ops,
                            i,
                            rank_of((i + 1) % q, j),
                            rank_of((i + q - 1) % q, j),
                            me,
                            msg,
                            2,
                        );
                        ops.push(chunk);
                        // Z sweep: diagonal ring shift (multi-partition).
                        ring_shift(
                            ops,
                            i,
                            rank_of((i + 1) % q, (j + 1) % q),
                            rank_of((i + q - 1) % q, (j + q - 1) % q),
                            me,
                            msg,
                            3,
                        );
                        ops.push(chunk);
                    } else {
                        for _ in 0..3 {
                            ops.push(chunk);
                        }
                    }
                })
                .with_epilogue(|ops| {
                    // Verification norm.
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Allreduce { bytes: 40 }));
                    }
                }),
            )
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    #[test]
    fn builds_on_square_counts() {
        for np in [1usize, 4, 9, 16, 25, 36, 64] {
            build(Kernel::Bt, Class::S, np).validate().unwrap();
            build(Kernel::Sp, Class::S, np).validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        build(Kernel::Bt, Class::S, 8);
    }

    #[test]
    fn bt_vayu_speedup_nearly_linear() {
        let t = |np: usize| {
            run_job(
                &mut build(Kernel::Bt, Class::B, np),
                &presets::vayu(),
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs()
        };
        let sp = t(1) / t(36);
        assert!(sp > 24.0, "BT speedup at 36 on Vayu: {sp}");
    }

    #[test]
    fn ring_exchanges_are_symmetric() {
        // The +1 ring exchange of rank r must mirror the -1 exchange of its
        // neighbour — validate() checks this pairing (tags 1 and 2).
        build(Kernel::Sp, Class::S, 16).validate().unwrap();
    }
}
