//! The NAS Parallel Benchmarks (MPI, v3.3) as workload models.
//!
//! Eight kernels — BT, CG, EP, FT, IS, LU, MG, SP — with the published
//! problem dimensions per class and the communication structure of the MPI
//! reference implementations. Total work per kernel is anchored to the
//! paper's Figure 3 single-process DCC walltimes (class B); other classes
//! scale by the standard operation-count ratios of their problem sizes.

pub mod bt_sp;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;

use crate::Workload;
use sim_mpi::JobSpec;

/// NPB problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    S,
    W,
    A,
    B,
    C,
}

impl Class {
    pub fn letter(&self) -> char {
        match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
        }
    }
}

/// The eight kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    Bt,
    Cg,
    Ep,
    Ft,
    Is,
    Lu,
    Mg,
    Sp,
}

impl Kernel {
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bt => "bt",
            Kernel::Cg => "cg",
            Kernel::Ep => "ep",
            Kernel::Ft => "ft",
            Kernel::Is => "is",
            Kernel::Lu => "lu",
            Kernel::Mg => "mg",
            Kernel::Sp => "sp",
        }
    }

    /// All kernels in the paper's Figure 3/4 order.
    pub fn all() -> [Kernel; 8] {
        [
            Kernel::Bt,
            Kernel::Ep,
            Kernel::Cg,
            Kernel::Ft,
            Kernel::Is,
            Kernel::Lu,
            Kernel::Mg,
            Kernel::Sp,
        ]
    }

    /// Single-process class-B walltime on DCC, seconds — the Figure 3
    /// anchors printed in the paper.
    pub fn dcc_serial_secs_class_b(&self) -> f64 {
        match self {
            Kernel::Bt => 1696.9,
            Kernel::Ep => 141.5,
            Kernel::Cg => 244.9,
            Kernel::Ft => 327.6,
            Kernel::Is => 8.6,
            Kernel::Lu => 1514.7,
            Kernel::Mg => 72.0,
            Kernel::Sp => 1936.1,
        }
    }

    /// Work of `class` relative to class B (operation-count ratio from the
    /// published problem sizes).
    pub fn class_scale(&self, class: Class) -> f64 {
        let cube = |n: usize, it: usize| (n * n * n * it) as f64;
        match self {
            Kernel::Bt => {
                let b = cube(102, 200);
                match class {
                    Class::S => cube(12, 60) / b,
                    Class::W => cube(24, 200) / b,
                    Class::A => cube(64, 200) / b,
                    Class::B => 1.0,
                    Class::C => cube(162, 200) / b,
                }
            }
            Kernel::Sp => {
                let b = cube(102, 400);
                match class {
                    Class::S => cube(12, 100) / b,
                    Class::W => cube(36, 400) / b,
                    Class::A => cube(64, 400) / b,
                    Class::B => 1.0,
                    Class::C => cube(162, 400) / b,
                }
            }
            Kernel::Lu => {
                let b = cube(102, 250);
                match class {
                    Class::S => cube(12, 50) / b,
                    Class::W => cube(33, 300) / b,
                    Class::A => cube(64, 250) / b,
                    Class::B => 1.0,
                    Class::C => cube(162, 250) / b,
                }
            }
            Kernel::Mg => {
                let b = cube(256, 20);
                match class {
                    Class::S => cube(32, 4) / b,
                    Class::W => cube(128, 4) / b,
                    Class::A => cube(256, 4) / b,
                    Class::B => 1.0,
                    Class::C => cube(512, 20) / b,
                }
            }
            Kernel::Ft => {
                let vol = |x: usize, y: usize, z: usize, it: usize| (x * y * z * it) as f64;
                let b = vol(512, 256, 256, 20);
                match class {
                    Class::S => vol(64, 64, 64, 6) / b,
                    Class::W => vol(128, 128, 32, 6) / b,
                    Class::A => vol(256, 256, 128, 6) / b,
                    Class::B => 1.0,
                    Class::C => vol(512, 512, 512, 20) / b,
                }
            }
            Kernel::Cg => {
                let work = |na: usize, nz: usize, it: usize| (na * nz * it) as f64;
                let b = work(75000, 13, 75);
                match class {
                    Class::S => work(1400, 7, 15) / b,
                    Class::W => work(7000, 8, 15) / b,
                    Class::A => work(14000, 11, 15) / b,
                    Class::B => 1.0,
                    Class::C => work(150000, 15, 75) / b,
                }
            }
            Kernel::Is => {
                let b = (1u64 << 25) as f64;
                match class {
                    Class::S => (1u64 << 16) as f64 / b,
                    Class::W => (1u64 << 20) as f64 / b,
                    Class::A => (1u64 << 23) as f64 / b,
                    Class::B => 1.0,
                    Class::C => (1u64 << 27) as f64 / b,
                }
            }
            Kernel::Ep => {
                let b = (1u64 << 30) as f64;
                match class {
                    Class::S => (1u64 << 24) as f64 / b,
                    Class::W => (1u64 << 25) as f64 / b,
                    Class::A => (1u64 << 28) as f64 / b,
                    Class::B => 1.0,
                    Class::C => (1u64 << 32) as f64 / b,
                }
            }
        }
    }

    /// Total serial work of `(kernel, class)` expressed as DCC seconds.
    pub fn dcc_serial_secs(&self, class: Class) -> f64 {
        self.dcc_serial_secs_class_b() * self.class_scale(class)
    }

    /// Memory-bound fraction `mu` (0 = pure compute, 1 = pure streaming).
    pub fn mu(&self) -> f64 {
        match self {
            Kernel::Bt => 0.55,
            Kernel::Sp => 0.65,
            Kernel::Lu => 0.60,
            Kernel::Mg => 0.85,
            Kernel::Ft => 0.60,
            Kernel::Cg => 0.88,
            Kernel::Is => 0.90,
            Kernel::Ep => 0.0,
        }
    }

    /// Cache-shrink exponent: how quickly the per-rank streamed-byte volume
    /// drops as the working set is divided (see `calib::cache_shrink`).
    pub fn kappa(&self) -> f64 {
        match self {
            Kernel::Bt | Kernel::Sp | Kernel::Lu => 0.30,
            Kernel::Mg => 0.25,
            Kernel::Cg => 0.30,
            Kernel::Ft => 0.10,
            Kernel::Is => 0.0,
            Kernel::Ep => 0.0,
        }
    }

    /// Whether `np` is a legal process count for the kernel (powers of two,
    /// except BT/SP which need perfect squares — 1, 4, 9, 16, 25, 36, 49,
    /// 64 — matching the paper's BT.B.36/SP.B.36 points).
    pub fn valid_np(&self, np: usize) -> bool {
        if np == 0 {
            return false;
        }
        match self {
            Kernel::Bt | Kernel::Sp => crate::util::perfect_square(np).is_some(),
            _ => np.is_power_of_two(),
        }
    }

    /// Process counts the paper sweeps in Figure 4 for this kernel.
    pub fn paper_np_sweep(&self) -> Vec<usize> {
        match self {
            Kernel::Bt | Kernel::Sp => vec![1, 4, 16, 36, 64],
            _ => vec![1, 2, 4, 8, 16, 32, 64],
        }
    }
}

/// An NPB benchmark instance: kernel + class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Npb {
    pub kernel: Kernel,
    pub class: Class,
}

impl Npb {
    pub fn new(kernel: Kernel, class: Class) -> Npb {
        Npb { kernel, class }
    }
}

impl Workload for Npb {
    fn name(&self) -> String {
        format!("{}.{}", self.kernel.name(), self.class.letter())
    }

    fn describe(&self) -> Option<crate::WorkloadDesc> {
        Some(crate::WorkloadDesc::Npb {
            kernel: self.kernel,
            class: self.class,
        })
    }

    fn build(&self, np: usize) -> JobSpec {
        assert!(
            self.kernel.valid_np(np),
            "{} does not run on np={np}",
            self.name()
        );
        let mut job = match self.kernel {
            Kernel::Ep => ep::build(self.class, np),
            Kernel::Cg => cg::build(self.class, np),
            Kernel::Ft => ft::build(self.class, np),
            Kernel::Is => is::build(self.class, np),
            Kernel::Mg => mg::build(self.class, np),
            Kernel::Lu => lu::build(self.class, np),
            Kernel::Bt => bt_sp::build(Kernel::Bt, self.class, np),
            Kernel::Sp => bt_sp::build(Kernel::Sp, self.class, np),
        };
        job.meta.name = self.name().into();
        job
    }
}

/// Shared helper: per-rank compute chunk for a `share` of the kernel's
/// total anchored work, split evenly over `np` ranks.
pub(crate) fn compute_chunk(kernel: Kernel, class: Class, np: usize, share: f64) -> sim_mpi::Op {
    let secs = kernel.dcc_serial_secs(class);
    let (total_flops, total_bytes) = crate::calib::dcc_seconds_to_work(secs, kernel.mu());
    let shrink = crate::calib::cache_shrink(np, kernel.kappa());
    sim_mpi::Op::Compute {
        flops: total_flops * share / np as f64,
        bytes: total_bytes * share * shrink / np as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn names_and_sweeps() {
        let w = Npb::new(Kernel::Cg, Class::B);
        assert_eq!(w.name(), "cg.B");
        assert_eq!(Kernel::Bt.paper_np_sweep(), vec![1, 4, 16, 36, 64]);
        assert!(Kernel::Bt.valid_np(36));
        assert!(!Kernel::Bt.valid_np(32));
        assert!(Kernel::Ft.valid_np(32));
        assert!(!Kernel::Ft.valid_np(36));
    }

    #[test]
    fn class_scales_are_ordered() {
        for k in Kernel::all() {
            let s = k.class_scale(Class::S);
            let w = k.class_scale(Class::W);
            let a = k.class_scale(Class::A);
            let b = k.class_scale(Class::B);
            let c = k.class_scale(Class::C);
            assert!(
                s < w && w <= a && a < b && b < c,
                "{}: {s} {w} {a} {b} {c}",
                k.name()
            );
            assert_eq!(b, 1.0);
        }
    }

    #[test]
    fn every_kernel_builds_valid_jobs() {
        for k in Kernel::all() {
            for np in k.paper_np_sweep() {
                // Class S keeps this fast.
                let mut job = Npb::new(k, Class::S).build(np);
                assert_eq!(job.np(), np, "{} np={np}", k.name());
                job.validate()
                    .unwrap_or_else(|e| panic!("{} np={np}: {e}", k.name()));
            }
        }
    }

    #[test]
    fn figure3_anchor_values() {
        assert_eq!(Kernel::Bt.dcc_serial_secs(Class::B), 1696.9);
        assert_eq!(Kernel::Is.dcc_serial_secs(Class::B), 8.6);
        assert!(Kernel::Ep.dcc_serial_secs(Class::A) < Kernel::Ep.dcc_serial_secs(Class::B));
    }
}
