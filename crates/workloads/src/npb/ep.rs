//! EP — embarrassingly parallel.
//!
//! Each rank generates its block of Gaussian pairs (see `numerics::ep` for
//! the real kernel) and the only communication is three small allreduces at
//! the end (the sums, the annulus counts and the timing reduction). This is
//! the paper's "no communication" baseline: near-linear everywhere, with
//! EC2's fluctuations coming purely from jitter.

use super::{compute_chunk, Class, Kernel};
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

pub fn build(class: Class, np: usize) -> JobSpec {
    // Split the single big compute into a handful of chunks so hypervisor
    // jitter gets several chances to fire per rank, like the real kernel's
    // loop structure. One block per chunk, plus a final reduction block.
    const CHUNKS: usize = 16;
    let chunk = compute_chunk(Kernel::Ep, class, np, 1.0 / CHUNKS as f64);
    let sources = (0..np)
        .map(|_| {
            OpSource::cyclic(
                CyclicProgram::new(CHUNKS, |ops| ops.push(chunk)).with_epilogue(|ops| {
                    // sx+sy, the ten annulus counts, and the verification flag.
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 16 }));
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 80 }));
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                }),
            )
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    #[test]
    fn ep_scales_nearly_linearly_on_vayu() {
        let t = |np: usize| {
            let mut job = build(Class::A, np);
            run_job(
                &mut job,
                &presets::vayu(),
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs()
        };
        let t1 = t(1);
        let t32 = t(32);
        let speedup = t1 / t32;
        assert!(speedup > 28.0, "EP speedup at 32: {speedup}");
    }

    #[test]
    fn ep_comm_fraction_negligible() {
        let mut job = build(Class::A, 16);
        let r = run_job(
            &mut job,
            &presets::dcc(),
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        assert!(r.comm_pct() < 2.0, "%comm {}", r.comm_pct());
    }
}
