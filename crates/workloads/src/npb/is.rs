//! IS — integer sort.
//!
//! Per iteration every rank buckets its keys, the bucket histogram is
//! allreduced, and the keys are redistributed with an all-to-allv. Tiny
//! compute per byte moved makes IS the most communication-intensive kernel
//! of the suite — the paper reports it failing to scale on *any* platform,
//! with DCC spending ~98% of walltime in MPI at 64 processes.

use super::{compute_chunk, Class, Kernel};
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

/// Number of keys per class (2^x) and iterations.
pub fn dims(class: Class) -> (u64, usize) {
    match class {
        Class::S => (1 << 16, 10),
        Class::W => (1 << 20, 10),
        Class::A => (1 << 23, 10),
        Class::B => (1 << 25, 10),
        Class::C => (1 << 27, 10),
    }
}

/// IS buckets (NPB uses 2^10 for key histogramming at these classes).
pub const NBUCKETS: usize = 1024;

/// The NPB key distribution (average of four uniforms) concentrates mass in
/// the middle buckets, so the all-to-allv is far from uniform: the hottest
/// pair carries roughly this multiple of the mean pair load, and the
/// pairwise exchange completes only when the hottest pair does.
pub const HOT_PAIR_FACTOR: usize = 3;

pub fn build(class: Class, np: usize) -> JobSpec {
    let (nkeys, niter) = dims(class);
    // Keys are 4-byte integers; each iteration redistributes all of them.
    let total_bytes = (nkeys * 4) as usize;
    let per_pair = (total_bytes * HOT_PAIR_FACTOR / (np * np)).max(1);
    let share = 1.0 / niter as f64;
    let bucket_chunk = compute_chunk(Kernel::Is, class, np, share * 0.6);
    let rank_chunk = compute_chunk(Kernel::Is, class, np, share * 0.4);

    // One block per sort iteration, plus a final verification block.
    let sources = (0..np)
        .map(|_| {
            OpSource::cyclic(
                CyclicProgram::new(niter, |ops| {
                    // Local bucketing.
                    ops.push(bucket_chunk);
                    if np > 1 {
                        // Histogram allreduce: NBUCKETS 4-byte counts.
                        ops.push(Op::Coll(CollOp::Allreduce {
                            bytes: NBUCKETS * 4,
                        }));
                        // Key redistribution.
                        ops.push(Op::Coll(CollOp::Alltoall {
                            bytes_per_pair: per_pair,
                        }));
                    }
                    // Local ranking of received keys.
                    ops.push(rank_chunk);
                })
                .with_epilogue(|ops| {
                    // Full verification.
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                    }
                }),
            )
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    fn comm_pct(cluster: &sim_platform::ClusterSpec, np: usize) -> f64 {
        let mut job = build(Class::B, np);
        run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .comm_pct()
    }

    #[test]
    fn is_dcc_spends_almost_everything_in_comm_at_64() {
        // Table II IS np=64: DCC 98.1%.
        let pct = comm_pct(&presets::dcc(), 64);
        assert!(pct > 85.0, "{pct}");
    }

    #[test]
    fn is_vayu_also_significant_at_64() {
        // Table II IS np=64: Vayu 68.2% — even QDR IB can't save IS.
        let pct = comm_pct(&presets::vayu(), 64);
        assert!((35.0..85.0).contains(&pct), "{pct}");
    }

    #[test]
    fn is_does_not_scale_well_anywhere() {
        // Fig 4 IS: speedup well below linear on every platform.
        for c in [presets::vayu(), presets::ec2(), presets::dcc()] {
            let t1 = run_job(
                &mut build(Class::B, 1),
                &c,
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs();
            let t64 = run_job(
                &mut build(Class::B, 64),
                &c,
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs();
            let sp = t1 / t64;
            assert!(sp < 24.0, "{}: IS speedup {sp}", c.name);
        }
    }
}
