//! CG — conjugate gradient.
//!
//! `niter` outer iterations each run 25 inner CG steps on a sparse system of
//! order `na` distributed over a 2-D processor grid. Per inner step the MPI
//! code exchanges partial vectors along the processor-grid transpose and
//! reduces two scalars — the stream of small messages and tiny allreduces
//! that makes CG the latency-bound benchmark of the suite (and the one the
//! paper uses to demonstrate DCC's NUMA/latency cliff at 8-16 processes).

use super::{compute_chunk, Class, Kernel};
use crate::util::{coord_of_2d, grid_2d, rank_of_2d};
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

/// Problem-size table: (na, nonzer, niter).
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (1400, 7, 15),
        Class::W => (7000, 8, 15),
        Class::A => (14000, 11, 15),
        Class::B => (75000, 13, 75),
        Class::C => (150000, 15, 75),
    }
}

/// Inner CG steps per outer iteration (the NPB `cgitmax`).
pub const CGIT: usize = 25;

pub fn build(class: Class, np: usize) -> JobSpec {
    let (na, _nonzer, niter) = dims(class);
    let (px, py) = grid_2d(np);
    let total_inner = niter * CGIT;
    let share = 1.0 / total_inner as f64;
    // Partial-vector exchange size: each rank holds na/px rows; the
    // transpose/reduce exchange moves that slab.
    let exch_bytes = (na / px).max(1) * 8;
    // Every inner step's compute chunk is identical: build the op once
    // here instead of re-deriving the calibration anchors per emitted op.
    let chunk = compute_chunk(Kernel::Cg, class, np, share);

    // One block per outer iteration: 25 inner CG steps plus the norm. Only
    // one outer iteration per rank is ever resident.
    let sources = (0..np)
        .map(|r| {
            let (x, y) = coord_of_2d(r, py);
            OpSource::cyclic(CyclicProgram::new(niter, |ops| {
                for _ in 0..CGIT {
                    ops.push(chunk);
                    // Transpose exchange: swap with the mirrored coordinate.
                    if px == py && px > 1 {
                        let partner = rank_of_2d(y, x, py);
                        if partner != r as u32 {
                            ops.push(Op::Exchange {
                                partner,
                                send_bytes: exch_bytes,
                                recv_bytes: exch_bytes,
                                tag: 1,
                            });
                        }
                    } else if np > 1 {
                        // Non-square grid: fold with the rank np/2 away.
                        let partner = ((r + np / 2) % np) as u32;
                        ops.push(Op::Exchange {
                            partner,
                            send_bytes: exch_bytes,
                            recv_bytes: exch_bytes,
                            tag: 1,
                        });
                    }
                    // Column-reduction ladder: log2(px) exchanges with
                    // same-column partners at doubling stride (these are the
                    // inter-node hops once the job spans nodes).
                    let mut stride = 1;
                    while stride < px {
                        let partner_x = x ^ stride;
                        if partner_x < px {
                            let partner = rank_of_2d(partner_x, y, py);
                            ops.push(Op::Exchange {
                                partner,
                                send_bytes: exch_bytes,
                                recv_bytes: exch_bytes,
                                tag: 2 + stride as u32,
                            });
                        }
                        stride <<= 1;
                    }
                    // The two scalar dot products of a CG step.
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                        ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
                    }
                }
                // Outer-iteration norm.
                if np > 1 {
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 16 }));
                }
            }))
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    fn comm_pct(cluster: &sim_platform::ClusterSpec, class: Class, np: usize) -> f64 {
        let mut job = build(class, np);
        let r = run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink).unwrap();
        r.comm_pct()
    }

    #[test]
    fn job_validates_on_all_power_of_two_np() {
        for np in [1usize, 2, 4, 8, 16, 32, 64] {
            build(Class::S, np).validate().unwrap();
        }
    }

    #[test]
    fn table2_comm_ordering_at_32() {
        // Table II CG np=32: DCC 78.0, EC2 38.8, Vayu 12.5.
        let dcc = comm_pct(&presets::dcc(), Class::B, 32);
        let ec2 = comm_pct(&presets::ec2(), Class::B, 32);
        let vayu = comm_pct(&presets::vayu(), Class::B, 32);
        assert!(dcc > ec2 && ec2 > vayu, "dcc={dcc} ec2={ec2} vayu={vayu}");
        assert!(dcc > 55.0, "dcc {dcc}");
        assert!(vayu < 25.0, "vayu {vayu}");
    }

    #[test]
    fn dcc_comm_jumps_when_spanning_nodes() {
        // Table II CG: DCC 5.3% at np=4 -> 68.3% at np=8... the paper's
        // measured jump is at 8->16 for communication (node boundary at 8
        // cores) — our model jumps when ranks first span two nodes.
        let within = comm_pct(&presets::dcc(), Class::B, 8);
        let across = comm_pct(&presets::dcc(), Class::B, 16);
        assert!(across > within + 20.0, "{within} -> {across}");
    }
}
