//! LU — SSOR solver with pipelined wavefront sweeps.
//!
//! The 2-D pencil decomposition sweeps lower- and upper-triangular systems
//! diagonally across the processor grid: rank (i, j) waits for its west and
//! north neighbours, works, then feeds east and south. The dependency chain
//! pipelines across k-plane chunks; messages are thin plane edges, so LU is
//! sensitive to latency but communicates far less volume than CG/IS.

use super::{compute_chunk, Class, Kernel};
use crate::util::{coord_of_2d, grid_2d, rank_of_2d};
use sim_mpi::{BlockProgram, CollOp, JobSpec, Op, OpSource};

/// Grid edge and iterations: (n, niter).
pub fn dims(class: Class) -> (usize, usize) {
    match class {
        Class::S => (12, 50),
        Class::W => (33, 300),
        Class::A => (64, 250),
        Class::B => (102, 250),
        Class::C => (162, 250),
    }
}

/// K-planes are grouped into pipeline chunks per sweep (the real code
/// communicates per plane; chunking preserves the pipeline shape while
/// keeping the trace compact). The chunk count scales with the processor
/// grid so the pipeline-fill fraction stays close to the real code's
/// `(px + py - 2) / nz`.
pub fn chunks(n: usize, px: usize, py: usize) -> usize {
    (3 * (px + py)).clamp(8, n.max(8))
}

pub fn build(class: Class, np: usize) -> JobSpec {
    let (n, niter) = dims(class);
    let (px, py) = grid_2d(np);
    let chunks = chunks(n, px, py);
    // Per-chunk edge messages: 5 variables, f64, one plane edge of the
    // local subgrid, times the chunk of k-planes.
    let east_bytes = ((n / py).max(1) * (n / chunks).max(1) * 5 * 8).max(40);
    let south_bytes = ((n / px).max(1) * (n / chunks).max(1) * 5 * 8).max(40);
    // Work split: 2 sweeps dominate (~80%), the RHS/halo phase the rest.
    let sweep_share = 0.4 / (chunks * niter) as f64;
    let rhs_share = 0.2 / niter as f64;
    let sweep_chunk = compute_chunk(Kernel::Lu, class, np, sweep_share);
    let rhs_chunk = compute_chunk(Kernel::Lu, class, np, rhs_share);

    // One block per SSOR iteration (both triangular sweeps + RHS).
    let sources = (0..np)
        .map(|r| {
            let (x, y) = coord_of_2d(r, py);
            OpSource::streamed(BlockProgram::new(move |it, ops: &mut Vec<Op>| {
                if it >= niter {
                    return false;
                }
                let base_tag = (it % 8) as u32 * 8;
                // Lower sweep: from north-west to south-east.
                for c in 0..chunks {
                    let tag = base_tag + c as u32 % 4;
                    if x > 0 {
                        ops.push(Op::Recv {
                            from: rank_of_2d(x - 1, y, py),
                            bytes: south_bytes,
                            tag,
                        });
                    }
                    if y > 0 {
                        ops.push(Op::Recv {
                            from: rank_of_2d(x, y - 1, py),
                            bytes: east_bytes,
                            tag,
                        });
                    }
                    ops.push(sweep_chunk);
                    if x + 1 < px {
                        ops.push(Op::Send {
                            to: rank_of_2d(x + 1, y, py),
                            bytes: south_bytes,
                            tag,
                        });
                    }
                    if y + 1 < py {
                        ops.push(Op::Send {
                            to: rank_of_2d(x, y + 1, py),
                            bytes: east_bytes,
                            tag,
                        });
                    }
                }
                // Upper sweep: reversed, from south-east to north-west.
                for c in 0..chunks {
                    let tag = base_tag + 4 + c as u32 % 4;
                    if x + 1 < px {
                        ops.push(Op::Recv {
                            from: rank_of_2d(x + 1, y, py),
                            bytes: south_bytes,
                            tag,
                        });
                    }
                    if y + 1 < py {
                        ops.push(Op::Recv {
                            from: rank_of_2d(x, y + 1, py),
                            bytes: east_bytes,
                            tag,
                        });
                    }
                    ops.push(sweep_chunk);
                    if x > 0 {
                        ops.push(Op::Send {
                            to: rank_of_2d(x - 1, y, py),
                            bytes: south_bytes,
                            tag,
                        });
                    }
                    if y > 0 {
                        ops.push(Op::Send {
                            to: rank_of_2d(x, y - 1, py),
                            bytes: east_bytes,
                            tag,
                        });
                    }
                }
                // RHS computation with a four-neighbour halo exchange.
                ops.push(rhs_chunk);
                let mut halo = |dx: i64, dy: i64, bytes: usize, tag: u32| {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0 && (nx as usize) < px && ny >= 0 && (ny as usize) < py {
                        ops.push(Op::Exchange {
                            partner: rank_of_2d(nx as usize, ny as usize, py),
                            send_bytes: bytes,
                            recv_bytes: bytes,
                            tag,
                        });
                    }
                };
                halo(-1, 0, south_bytes, 100);
                halo(1, 0, south_bytes, 100);
                halo(0, -1, east_bytes, 101);
                halo(0, 1, east_bytes, 101);
                // Periodic residual norm.
                if np > 1 && it % 5 == 0 {
                    ops.push(Op::Coll(CollOp::Allreduce { bytes: 40 }));
                }
                true
            }))
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    #[test]
    fn builds_and_validates() {
        for np in [1usize, 2, 4, 8, 16, 32, 64] {
            build(Class::S, np).validate().unwrap();
        }
    }

    #[test]
    fn wavefront_pipeline_completes() {
        // The directional sends/recvs must not deadlock on any platform.
        let mut job = build(Class::S, 16);
        for c in [presets::vayu(), presets::dcc(), presets::ec2()] {
            let r = run_job(&mut job, &c, &SimConfig::default(), &mut NullSink).unwrap();
            assert!(r.elapsed_secs() > 0.0);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn lu_scales_better_than_is_on_vayu() {
        let t = |np: usize| {
            run_job(
                &mut build(Class::B, np),
                &presets::vayu(),
                &SimConfig::default(),
                &mut NullSink,
            )
            .unwrap()
            .elapsed_secs()
        };
        let sp = t(1) / t(32);
        assert!(sp > 16.0, "LU speedup on Vayu at 32: {sp}");
    }
}
