//! FT — 3-D FFT PDE solver.
//!
//! Per iteration the grid is evolved in spectral space and transformed,
//! which requires transposing the distributed array twice: two all-to-alls
//! of the entire dataset per iteration. Bandwidth-bound with large messages
//! at small `np`, shrinking as `1/np²` per pair — which is why DCC partially
//! *recovers* at high process counts (the paper's observation about
//! MPI_AlltoAll message sizes decreasing).

use super::{compute_chunk, Class, Kernel};
use sim_mpi::{CollOp, CyclicProgram, JobSpec, Op, OpSource};

/// Grid dimensions and iteration count: (nx, ny, nz, niter).
pub fn dims(class: Class) -> (usize, usize, usize, usize) {
    match class {
        Class::S => (64, 64, 64, 6),
        Class::W => (128, 128, 32, 6),
        Class::A => (256, 256, 128, 6),
        Class::B => (512, 256, 256, 20),
        Class::C => (512, 512, 512, 20),
    }
}

pub fn build(class: Class, np: usize) -> JobSpec {
    let (nx, ny, nz, niter) = dims(class);
    // Complex128 grid.
    let total_bytes = nx * ny * nz * 16;
    let per_pair = (total_bytes / (np * np)).max(1);
    // One setup chunk plus two half-chunks per iteration, summing to 1.
    let share = 1.0 / (niter + 1) as f64;

    // Hoisted chunk ops: the anchors behind them are loop-invariant.
    let setup_chunk = compute_chunk(Kernel::Ft, class, np, share);
    let half_chunk = compute_chunk(Kernel::Ft, class, np, share * 0.5);

    // Block 0 is the setup transform; blocks 1..=niter are the timesteps.
    let sources = (0..np)
        .map(|_| {
            OpSource::cyclic(
                CyclicProgram::new(niter, |ops| {
                    // Evolve + inverse 3-D FFT: local pencils, transpose,
                    // local pencils again.
                    ops.push(half_chunk);
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Alltoall {
                            bytes_per_pair: per_pair,
                        }));
                    }
                    ops.push(half_chunk);
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Alltoall {
                            bytes_per_pair: per_pair,
                        }));
                    }
                    // Checksum reduction.
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Allreduce { bytes: 16 }));
                    }
                })
                .with_prologue(|ops| {
                    // Initial data generation + first forward transform.
                    ops.push(setup_chunk);
                    if np > 1 {
                        ops.push(Op::Coll(CollOp::Alltoall {
                            bytes_per_pair: per_pair,
                        }));
                    }
                }),
            )
        })
        .collect();
    JobSpec::from_sources(String::new(), sources, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{run_job, NullSink, SimConfig};
    use sim_platform::presets;

    fn elapsed(cluster: &sim_platform::ClusterSpec, np: usize) -> f64 {
        let mut job = build(Class::B, np);
        run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs()
    }

    #[test]
    fn vayu_scales_ft_nearly_linearly() {
        let t1 = elapsed(&presets::vayu(), 1);
        let t32 = elapsed(&presets::vayu(), 32);
        let sp = t1 / t32;
        assert!(sp > 20.0, "FT speedup on Vayu at 32: {sp}");
    }

    #[test]
    fn dcc_ft_speedup_dips_then_recovers() {
        // Fig 4 FT: DCC dips when first crossing nodes, then the shrinking
        // all-to-all messages claw some speedup back by 64.
        let t1 = elapsed(&presets::dcc(), 1);
        let s16 = t1 / elapsed(&presets::dcc(), 16);
        let s64 = t1 / elapsed(&presets::dcc(), 64);
        assert!(s64 > s16, "s16={s16} s64={s64}");
        // And it's far from linear.
        assert!(s64 < 40.0, "s64={s64}");
    }

    #[test]
    fn table2_ft_comm_ordering_at_64() {
        // Table II FT np=64: DCC 84.4, EC2 55.3, Vayu 20.8.
        let pct = |c: &sim_platform::ClusterSpec| {
            let mut job = build(Class::B, 64);
            run_job(&mut job, c, &SimConfig::default(), &mut NullSink)
                .unwrap()
                .comm_pct()
        };
        let dcc = pct(&presets::dcc());
        let ec2 = pct(&presets::ec2());
        let vayu = pct(&presets::vayu());
        assert!(dcc > ec2 && ec2 > vayu, "dcc={dcc} ec2={ec2} vayu={vayu}");
    }
}
