//! The OSU MPI micro-benchmarks (latency and bandwidth), as op programs.
//!
//! * `osu_latency`: ping-pong between two ranks on *different nodes*;
//!   reports half the round-trip per message size (paper Fig 2).
//! * `osu_bw`: rank 0 streams a window of back-to-back sends, rank 1 replies
//!   with one tiny ack per window; reports MB/s (paper Fig 1).
//!
//! Run these with `Strategy::Spread { nodes: 2 }` so the two ranks land on
//! distinct nodes with a core each — exactly how the real suite is launched
//! (one process per node).

use crate::Workload;
use sim_mpi::{run_job, BlockProgram, JobSpec, NullSink, Op, OpSource, SimConfig, SimError};
use sim_platform::{ClusterSpec, Strategy};

/// Message sizes swept by both OSU benchmarks (1 B .. 4 MB, powers of two).
pub fn osu_sizes() -> Vec<usize> {
    (0..=22).map(|k| 1usize << k).collect()
}

/// Iterations per size (the real suite uses more for small sizes; a fixed
/// count keeps runs deterministic — jitter statistics come from repeats with
/// different seeds).
pub const OSU_ITERS: usize = 100;
/// Warm-up iterations discarded by the real benchmark; modelled for shape
/// fidelity (they exercise the same code path).
pub const OSU_WARMUP: usize = 10;
/// Window size of the bandwidth test.
pub const OSU_BW_WINDOW: usize = 64;

/// The ping-pong latency benchmark for one message size.
#[derive(Debug, Clone, Copy)]
pub struct OsuLatency {
    pub bytes: usize,
}

impl Workload for OsuLatency {
    fn name(&self) -> String {
        format!("osu_latency.{}", self.bytes)
    }

    fn build(&self, np: usize) -> JobSpec {
        assert_eq!(np, 2, "osu_latency is a two-rank benchmark");
        let total = OSU_WARMUP + OSU_ITERS;
        let bytes = self.bytes;
        // One block per ping-pong round; only a single round is resident.
        let sources = (0..2)
            .map(|r| {
                OpSource::streamed(BlockProgram::new(move |k, ops: &mut Vec<Op>| {
                    if k >= total {
                        return false;
                    }
                    if r == 0 {
                        ops.push(Op::Send {
                            to: 1,
                            bytes,
                            tag: 0,
                        });
                        ops.push(Op::Recv {
                            from: 1,
                            bytes,
                            tag: 1,
                        });
                    } else {
                        ops.push(Op::Recv {
                            from: 0,
                            bytes,
                            tag: 0,
                        });
                        ops.push(Op::Send {
                            to: 0,
                            bytes,
                            tag: 1,
                        });
                    }
                    true
                }))
            })
            .collect();
        JobSpec::from_sources(self.name(), sources, vec![])
    }
}

/// Convert an `osu_latency` elapsed time into the reported metric:
/// microseconds per one-way message.
pub fn latency_us(elapsed_secs: f64) -> f64 {
    elapsed_secs / (OSU_WARMUP + OSU_ITERS) as f64 / 2.0 * 1e6
}

/// The windowed bandwidth benchmark for one message size.
#[derive(Debug, Clone, Copy)]
pub struct OsuBandwidth {
    pub bytes: usize,
}

/// Windows measured per size.
pub const OSU_BW_ROUNDS: usize = OSU_WARMUP + OSU_ITERS / 10;

impl Workload for OsuBandwidth {
    fn name(&self) -> String {
        format!("osu_bw.{}", self.bytes)
    }

    fn build(&self, np: usize) -> JobSpec {
        assert_eq!(np, 2, "osu_bw is a two-rank benchmark");
        let bytes = self.bytes;
        // One block per measured window (sends plus the tiny ack).
        let sources = (0..2)
            .map(|r| {
                OpSource::streamed(BlockProgram::new(move |k, ops: &mut Vec<Op>| {
                    if k >= OSU_BW_ROUNDS {
                        return false;
                    }
                    if r == 0 {
                        for _ in 0..OSU_BW_WINDOW {
                            ops.push(Op::Send {
                                to: 1,
                                bytes,
                                tag: 0,
                            });
                        }
                        ops.push(Op::Recv {
                            from: 1,
                            bytes: 4,
                            tag: 1,
                        });
                    } else {
                        for _ in 0..OSU_BW_WINDOW {
                            ops.push(Op::Recv {
                                from: 0,
                                bytes,
                                tag: 0,
                            });
                        }
                        ops.push(Op::Send {
                            to: 0,
                            bytes: 4,
                            tag: 1,
                        });
                    }
                    true
                }))
            })
            .collect();
        JobSpec::from_sources(self.name(), sources, vec![])
    }
}

/// Convert an `osu_bw` elapsed time into MB/s as the suite reports it.
pub fn bandwidth_mb_s(bytes: usize, elapsed_secs: f64) -> f64 {
    let total = (OSU_BW_ROUNDS * OSU_BW_WINDOW * bytes) as f64;
    total / elapsed_secs / 1e6
}

/// Run the latency benchmark on a platform (one process per node) and
/// report microseconds.
pub fn run_latency(cluster: &ClusterSpec, bytes: usize, seed: u64) -> Result<f64, SimError> {
    let mut job = OsuLatency { bytes }.build(2);
    let cfg = SimConfig {
        seed,
        strategy: Strategy::Spread { nodes: 2 },
        ..Default::default()
    };
    let r = run_job(&mut job, cluster, &cfg, &mut NullSink)?;
    Ok(latency_us(r.elapsed_secs()))
}

/// Run the bandwidth benchmark on a platform and report MB/s.
pub fn run_bandwidth(cluster: &ClusterSpec, bytes: usize, seed: u64) -> Result<f64, SimError> {
    let mut job = OsuBandwidth { bytes }.build(2);
    let cfg = SimConfig {
        seed,
        strategy: Strategy::Spread { nodes: 2 },
        ..Default::default()
    };
    let r = run_job(&mut job, cluster, &cfg, &mut NullSink)?;
    Ok(bandwidth_mb_s(bytes, r.elapsed_secs()))
}

/// A collective latency benchmark (osu_allreduce / osu_bcast /
/// osu_alltoall): `np` ranks iterate the collective back to back and
/// report mean time per operation in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct OsuCollective {
    pub op: sim_mpi::CollOp,
    pub iters: usize,
}

impl OsuCollective {
    pub fn allreduce(bytes: usize) -> Self {
        OsuCollective {
            op: sim_mpi::CollOp::Allreduce { bytes },
            iters: OSU_ITERS,
        }
    }
    pub fn bcast(bytes: usize) -> Self {
        OsuCollective {
            op: sim_mpi::CollOp::Bcast { root: 0, bytes },
            iters: OSU_ITERS,
        }
    }
    pub fn alltoall(bytes_per_pair: usize) -> Self {
        OsuCollective {
            op: sim_mpi::CollOp::Alltoall { bytes_per_pair },
            iters: OSU_ITERS,
        }
    }
}

impl Workload for OsuCollective {
    fn name(&self) -> String {
        format!(
            "osu_{}",
            self.op.name().trim_start_matches("MPI_").to_lowercase()
        )
    }

    fn build(&self, np: usize) -> JobSpec {
        let op = self.op;
        let total = self.iters + OSU_WARMUP;
        let sources = (0..np)
            .map(|_| {
                OpSource::streamed(BlockProgram::new(move |k, ops: &mut Vec<Op>| {
                    if k >= total {
                        return false;
                    }
                    ops.push(Op::Coll(op));
                    true
                }))
            })
            .collect();
        JobSpec::from_sources(self.name(), sources, vec![])
    }
}

/// Run a collective benchmark, reporting mean microseconds per operation.
pub fn run_collective(
    cluster: &ClusterSpec,
    bench: OsuCollective,
    np: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let mut job = bench.build(np);
    let cfg = SimConfig {
        seed,
        strategy: Strategy::Block,
        ..Default::default()
    };
    let r = run_job(&mut job, cluster, &cfg, &mut NullSink)?;
    Ok(r.elapsed_secs() / (bench.iters + OSU_WARMUP) as f64 * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_platform::presets;

    #[test]
    fn fig2_small_message_latency_ordering() {
        let vayu = run_latency(&presets::vayu(), 8, 1).unwrap();
        let ec2 = run_latency(&presets::ec2(), 8, 1).unwrap();
        let dcc = run_latency(&presets::dcc(), 8, 1).unwrap();
        assert!((1.0..5.0).contains(&vayu), "vayu {vayu} us");
        assert!((40.0..90.0).contains(&ec2), "ec2 {ec2} us");
        assert!(dcc > 100.0, "dcc {dcc} us");
    }

    #[test]
    fn fig1_peak_bandwidth_plateaus() {
        let vayu = run_bandwidth(&presets::vayu(), 1 << 20, 1).unwrap();
        let ec2 = run_bandwidth(&presets::ec2(), 256 * 1024, 1).unwrap();
        let dcc = run_bandwidth(&presets::dcc(), 256 * 1024, 1).unwrap();
        // Paper: Vayu >= 10x others; EC2 ~560 MB/s; DCC ~190 MB/s.
        assert!(vayu > 2000.0, "vayu {vayu} MB/s");
        assert!((450.0..650.0).contains(&ec2), "ec2 {ec2} MB/s");
        assert!((140.0..230.0).contains(&dcc), "dcc {dcc} MB/s");
        assert!(vayu / dcc > 10.0);
    }

    #[test]
    fn bandwidth_grows_with_message_size_then_plateaus() {
        let c = presets::ec2();
        let small = run_bandwidth(&c, 64, 1).unwrap();
        let mid = run_bandwidth(&c, 16 * 1024, 1).unwrap();
        let large = run_bandwidth(&c, 1 << 20, 1).unwrap();
        assert!(small < mid && mid < large * 1.5);
    }

    #[test]
    fn dcc_latency_fluctuates_across_seeds() {
        // Fig 2's DCC curve is visibly noisy; different seeds must produce
        // measurably different latencies at small sizes.
        let c = presets::dcc();
        let vals: Vec<f64> = (0..8u64)
            .map(|seed| run_latency(&c, 512, seed).unwrap())
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.05, "no fluctuation: {vals:?}");
    }

    #[test]
    fn collective_latency_hierarchy() {
        // 4-byte allreduce at 32 ranks: the Chaste KSp signature operation,
        // across the three fabrics.
        let bench = OsuCollective::allreduce(4);
        let vayu = run_collective(&presets::vayu(), bench, 32, 1).unwrap();
        let ec2 = run_collective(&presets::ec2(), bench, 32, 1).unwrap();
        let dcc = run_collective(&presets::dcc(), bench, 32, 1).unwrap();
        assert!(vayu < ec2 && ec2 < dcc, "vayu {vayu} ec2 {ec2} dcc {dcc}");
        assert!(vayu < 40.0, "vayu 4B allreduce {vayu} us");
        assert!(dcc > 250.0, "dcc 4B allreduce {dcc} us");
    }

    #[test]
    fn allreduce_cost_grows_with_np_and_bytes() {
        let c = presets::vayu();
        let small_8 = run_collective(&c, OsuCollective::allreduce(8), 8, 1).unwrap();
        let small_64 = run_collective(&c, OsuCollective::allreduce(8), 64, 1).unwrap();
        let big_64 = run_collective(&c, OsuCollective::allreduce(1 << 20), 64, 1).unwrap();
        assert!(small_64 > small_8);
        assert!(big_64 > small_64 * 5.0);
    }

    #[test]
    fn bcast_cheaper_than_alltoall() {
        let c = presets::ec2();
        let b = run_collective(&c, OsuCollective::bcast(4096), 32, 1).unwrap();
        let a = run_collective(&c, OsuCollective::alltoall(4096), 32, 1).unwrap();
        assert!(b < a, "bcast {b} vs alltoall {a}");
    }

    #[test]
    fn vayu_latency_is_stable_across_seeds() {
        let c = presets::vayu();
        let vals: Vec<f64> = (0..5u64)
            .map(|seed| run_latency(&c, 512, seed).unwrap())
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.02, "unexpected fluctuation: {vals:?}");
    }
}
