//! Coordinated checkpoint/restart as a workload wrapper.
//!
//! [`Checkpointed`] wraps any [`Workload`] and splices an [`Op::Checkpoint`]
//! into every rank's op stream after every `every_colls`-th world
//! collective. World collectives are the natural cut points: validation
//! guarantees every rank issues the same world-collective sequence, so the
//! k-th one is a consistent global cut — no point-to-point message can
//! straddle it in the timestep-structured workloads of the study, where
//! halo exchanges complete inside a step and steps end in a norm/residual
//! collective. This mirrors how application-level checkpointing libraries
//! (SCR, FTI) hook the end-of-timestep boundary.
//!
//! The wrapper streams: each rank's source is wrapped, not materialized, so
//! a checkpointed MetUM run keeps the O(block) memory profile of the
//! streaming refactor.

use crate::Workload;
use sim_mpi::{JobSpec, Op, OpSource, Program};

/// When and how much to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Take a checkpoint after every this-many world collectives (>= 1).
    /// Workload timesteps end in a world collective, so this is "every k
    /// timesteps" for the codes in the study.
    pub every_colls: u64,
    /// Bytes of state each rank writes per checkpoint.
    pub bytes_per_rank: u64,
}

impl CheckpointPolicy {
    pub fn new(every_colls: u64, bytes_per_rank: u64) -> Self {
        assert!(every_colls >= 1, "checkpoint interval must be >= 1");
        CheckpointPolicy {
            every_colls,
            bytes_per_rank,
        }
    }
}

/// A workload with coordinated checkpoints spliced in.
pub struct Checkpointed<'a> {
    pub inner: &'a dyn Workload,
    pub policy: CheckpointPolicy,
}

impl<'a> Checkpointed<'a> {
    pub fn new(inner: &'a dyn Workload, policy: CheckpointPolicy) -> Self {
        Checkpointed { inner, policy }
    }
}

impl Workload for Checkpointed<'_> {
    fn name(&self) -> String {
        format!(
            "{}+ckpt/{}x{}B",
            self.inner.name(),
            self.policy.every_colls,
            self.policy.bytes_per_rank
        )
    }

    fn build(&self, np: usize) -> JobSpec {
        let inner = self.inner.build(np);
        let policy = self.policy;
        let sources = inner
            .sources
            .into_iter()
            .map(|s| {
                OpSource::streamed(CheckpointProgram {
                    inner: s,
                    policy,
                    seen: 0,
                    queued: false,
                })
            })
            .collect();
        JobSpec::from_sources(self.name(), sources, inner.meta.section_names)
    }

    fn memory_per_rank_bytes(&self, np: usize) -> u64 {
        self.inner.memory_per_rank_bytes(np)
    }
}

/// Streams the inner source, counting world collectives and emitting an
/// [`Op::Checkpoint`] right after every `every_colls`-th one.
struct CheckpointProgram {
    inner: OpSource,
    policy: CheckpointPolicy,
    /// World collectives seen since the last checkpoint.
    seen: u64,
    /// A checkpoint is due before the next inner op.
    queued: bool,
}

impl Program for CheckpointProgram {
    fn next_op(&mut self) -> Option<Op> {
        if self.queued {
            self.queued = false;
            return Some(Op::Checkpoint {
                bytes: self.policy.bytes_per_rank,
            });
        }
        let op = self.inner.next_op()?;
        if matches!(op, Op::Coll(_)) {
            self.seen += 1;
            if self.seen == self.policy.every_colls {
                self.seen = 0;
                self.queued = true;
            }
        }
        Some(op)
    }

    fn rewind(&mut self) {
        self.inner.rewind();
        self.seen = 0;
        self.queued = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Class, Kernel, MetUm, Npb};

    fn count_kinds(job: &mut JobSpec, r: usize) -> (usize, usize) {
        let ops = job.materialize_rank(r);
        let colls = ops.iter().filter(|o| matches!(o, Op::Coll(_))).count();
        let ckpts = ops
            .iter()
            .filter(|o| matches!(o, Op::Checkpoint { .. }))
            .count();
        (colls, ckpts)
    }

    #[test]
    fn checkpoints_land_after_every_kth_world_collective() {
        let w = Npb::new(Kernel::Cg, Class::S);
        let ck = Checkpointed::new(&w, CheckpointPolicy::new(5, 1 << 20));
        let mut job = ck.build(4);
        for r in 0..4 {
            let (colls, ckpts) = count_kinds(&mut job, r);
            assert_eq!(ckpts, colls / 5, "rank {r}");
        }
        // The op right before each checkpoint is a world collective.
        let ops = job.materialize_rank(0);
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::Checkpoint { .. }) {
                assert!(matches!(ops[i - 1], Op::Coll(_)), "op {i}");
            }
        }
    }

    #[test]
    fn checkpointed_jobs_still_validate() {
        for np in [1usize, 2, 4, 8] {
            let w = MetUm { timesteps: 3 };
            let ck = Checkpointed::new(&w, CheckpointPolicy::new(2, 1 << 22));
            let mut job = ck.build(np);
            assert!(job.is_fully_streamed());
            let v = job.validate();
            assert!(v.is_ok(), "np={np}: {v:?}");
        }
    }

    #[test]
    fn rewind_reproduces_the_spliced_stream() {
        let w = Npb::new(Kernel::Mg, Class::S);
        let ck = Checkpointed::new(&w, CheckpointPolicy::new(3, 4096));
        let mut job = ck.build(2);
        let first = job.materialize_rank(1);
        let again = job.materialize_rank(1);
        assert_eq!(first, again);
        assert!(first.iter().any(|o| matches!(o, Op::Checkpoint { .. })));
    }
}
