//! Calibration anchors.
//!
//! The paper's Figure 3 prints the absolute single-process walltimes of
//! every NPB class-B kernel on DCC. Rather than guessing per-kernel flop
//! counts for 2009-era Fortran binaries, the workload models *anchor* each
//! kernel's total work to those measured seconds: a kernel that took `W`
//! seconds serially on DCC is assigned `W × (DCC serial flops rate)`
//! effective flops (and `μ · W ×` the serial memory rate of streamed bytes,
//! where `μ` is the kernel's memory-bound fraction). Every other platform
//! and rank count then follows from the models, with no further per-kernel
//! tuning — this is exactly the "shape, not absolute numbers" contract of
//! the reproduction.

use sim_platform::{presets, Strategy};
use std::sync::OnceLock;

/// Effective rates of a single rank on a given cluster preset (flops/s,
/// bytes/s) — computed from the model itself so the anchor stays consistent
/// if platform parameters change.
fn serial_rates(cluster: &sim_platform::ClusterSpec) -> (f64, f64) {
    let p = cluster
        .place(1, Strategy::Block)
        .expect("1 rank always places");
    let r = &cluster.rank_rates(&p)[0];
    (r.flops_rate, r.mem_rate)
}

/// Memoized DCC anchor rates. Workload builders call these per emitted
/// compute chunk, and re-deriving them means constructing the whole DCC
/// preset and placing a rank each time — measurably hot when a streamed
/// job regenerates millions of ops. The presets are compile-time constants,
/// so caching the derived rates is exact.
fn dcc_rates() -> (f64, f64) {
    static RATES: OnceLock<(f64, f64)> = OnceLock::new();
    *RATES.get_or_init(|| serial_rates(&presets::dcc()))
}

/// Memoized Vayu anchor rates (see [`dcc_rates`]).
fn vayu_rates() -> (f64, f64) {
    static RATES: OnceLock<(f64, f64)> = OnceLock::new();
    *RATES.get_or_init(|| serial_rates(&presets::vayu()))
}

/// DCC single-rank effective flops rate (the Fig 3 anchor).
pub fn dcc_serial_flops_rate() -> f64 {
    dcc_rates().0
}

/// DCC single-rank effective memory streaming rate.
pub fn dcc_serial_mem_rate() -> f64 {
    dcc_rates().1
}

/// Vayu single-rank effective flops rate (anchor for the two applications,
/// whose Fig 5/6 `t8` values are reported on Vayu).
pub fn vayu_serial_flops_rate() -> f64 {
    vayu_rates().0
}

/// Vayu single-rank effective memory streaming rate.
pub fn vayu_serial_mem_rate() -> f64 {
    vayu_rates().1
}

/// Convert "seconds of serial work on DCC" into (flops, bytes) totals given
/// a memory-bound fraction `mu` in `[0, 1]`.
pub fn dcc_seconds_to_work(secs: f64, mu: f64) -> (f64, f64) {
    (
        secs * dcc_serial_flops_rate(),
        secs * mu * dcc_serial_mem_rate(),
    )
}

/// Convert "seconds of serial work on Vayu" into (flops, bytes) totals.
pub fn vayu_seconds_to_work(secs: f64, mu: f64) -> (f64, f64) {
    (
        secs * vayu_serial_flops_rate(),
        secs * mu * vayu_serial_mem_rate(),
    )
}

/// Per-rank cache-shrink factor: as a job is split over more ranks, each
/// rank's working set shrinks and a `p^-kappa` fraction of the original
/// memory traffic stays resident in the 8 MB L2. Applied multiplicatively
/// to the per-rank streamed bytes.
pub fn cache_shrink(np: usize, kappa: f64) -> f64 {
    (np as f64).powf(-kappa)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_positive_and_ordered() {
        assert!(dcc_serial_flops_rate() > 1e9);
        assert!(vayu_serial_flops_rate() > dcc_serial_flops_rate());
        assert!(dcc_serial_mem_rate() > 1e9);
        assert!(vayu_serial_mem_rate() > dcc_serial_mem_rate());
    }

    #[test]
    fn serial_anchor_roundtrip() {
        // A kernel anchored at W seconds must take exactly W seconds when
        // simulated serially on DCC (compute-bound case).
        let (flops, bytes) = dcc_seconds_to_work(100.0, 0.5);
        let c = presets::dcc();
        let p = c.place(1, Strategy::Block).unwrap();
        let r = &c.rank_rates(&p)[0];
        let t = r.compute_time(flops, bytes);
        assert!((t - 100.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn fully_memory_bound_still_anchored() {
        let (flops, bytes) = dcc_seconds_to_work(50.0, 1.0);
        let c = presets::dcc();
        let p = c.place(1, Strategy::Block).unwrap();
        let r = &c.rank_rates(&p)[0];
        let t = r.compute_time(flops, bytes);
        assert!((t - 50.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn fig3_expectation_vayu_faster_serially() {
        // Normalized serial time Vayu/DCC should sit near the clock ratio
        // (paper Fig 3: Vayu bars below 1).
        let (flops, bytes) = dcc_seconds_to_work(100.0, 0.3);
        let v = presets::vayu();
        let p = v.place(1, Strategy::Block).unwrap();
        let r = &v.rank_rates(&p)[0];
        let t = r.compute_time(flops, bytes);
        assert!((0.70..0.85).contains(&(t / 100.0)), "normalized {t}");
    }

    #[test]
    fn cache_shrink_monotone() {
        assert_eq!(cache_shrink(1, 0.3), 1.0);
        assert!(cache_shrink(8, 0.3) < 1.0);
        assert!(cache_shrink(64, 0.3) < cache_shrink(8, 0.3));
        assert_eq!(cache_shrink(64, 0.0), 1.0);
    }
}
