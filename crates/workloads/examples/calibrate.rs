//! Calibration dashboard: prints every paper-anchored quantity next to its
//! simulated value. Used while tuning model parameters; kept as an example
//! because it doubles as a whole-system smoke test.

use sim_ipm::profile_run;
use sim_mpi::{run_job, NullSink, SimConfig};
use sim_platform::{presets, ClusterSpec, Strategy};
use workloads::{
    metum::warmed_secs,
    npb::{Class, Kernel, Npb},
    osu::{run_bandwidth, run_latency},
    Chaste, MetUm, Workload,
};

fn elapsed(w: &dyn Workload, c: &ClusterSpec, np: usize, strategy: Strategy) -> f64 {
    let mut job = w.build(np);
    let cfg = SimConfig {
        strategy,
        ..Default::default()
    };
    run_job(&mut job, c, &cfg, &mut NullSink)
        .unwrap()
        .elapsed_secs()
}

fn comm_pct(w: &dyn Workload, c: &ClusterSpec, np: usize) -> f64 {
    let mut job = w.build(np);
    run_job(&mut job, c, &SimConfig::default(), &mut NullSink)
        .unwrap()
        .comm_pct()
}

fn main() {
    let platforms = [presets::dcc(), presets::ec2(), presets::vayu()];

    println!("== OSU latency (us, half RTT) — paper Fig 2");
    for bytes in [8usize, 1024, 64 * 1024, 1 << 20] {
        print!("{:>9}B", bytes);
        for c in &platforms {
            print!("  {:>10.1} ({})", run_latency(c, bytes, 1).unwrap(), c.name);
        }
        println!();
    }

    println!("\n== OSU bandwidth (MB/s) — paper Fig 1 (peaks: dcc~190 ec2~560 vayu>2500)");
    for bytes in [4096usize, 64 * 1024, 256 * 1024, 1 << 22] {
        print!("{:>9}B", bytes);
        for c in &platforms {
            print!(
                "  {:>10.0} ({})",
                run_bandwidth(c, bytes, 1).unwrap(),
                c.name
            );
        }
        println!();
    }

    println!("\n== NPB class B serial (normalized to DCC) — paper Fig 3 (~0.75-0.85 both)");
    for k in Kernel::all() {
        let w = Npb::new(k, Class::B);
        let dcc = elapsed(&w, &platforms[0], 1, Strategy::Block);
        let ec2 = elapsed(&w, &platforms[1], 1, Strategy::Block);
        let vayu = elapsed(&w, &platforms[2], 1, Strategy::Block);
        println!(
            "{:>4}  dcc {:>7.1}s (paper {:>7.1})  ec2 {:.3}  vayu {:.3}",
            w.name(),
            dcc,
            k.dcc_serial_secs(Class::B),
            ec2 / dcc,
            vayu / dcc
        );
    }

    println!("\n== NPB class B speedups — paper Fig 4");
    for k in Kernel::all() {
        let w = Npb::new(k, Class::B);
        for c in &platforms {
            let t1 = elapsed(&w, c, 1, Strategy::Block);
            print!("{:>4} {:<4}", w.name(), c.name);
            for np in k.paper_np_sweep() {
                if np == 1 {
                    continue;
                }
                let t = elapsed(&w, c, np, Strategy::Block);
                print!("  {:>2}:{:>5.1}", np, t1 / t);
            }
            println!();
        }
    }

    println!("\n== Table II: %comm for CG/FT/IS");
    println!("paper CG  dcc: 1.5/5.3/68.3/85.7/78.0/90.3  ec2: 1.2/3.0/5.1/9.4/38.8/58.0  vayu: 0.9/1.9/3.8/8.5/12.5/21.7");
    println!("paper FT  dcc: 2.5/3.6/8.3/59.3/75.7/84.4   ec2: 2.1/3.4/5.4/7.2/38.2/55.3  vayu: 1.9/2.9/4.2/7.7/12.5/20.8");
    println!("paper IS  dcc: 6.3/8.6/14.2/82.4/88.3/98.1  ec2: 4.6/7.4/13.5/19.2/58.9/84.9 vayu: 4.4/8.2/12.9/22.1/44.4/68.2");
    for k in [Kernel::Cg, Kernel::Ft, Kernel::Is] {
        let w = Npb::new(k, Class::B);
        for c in &platforms {
            print!("sim {:>3} {:<4}", k.name(), c.name);
            for np in [2usize, 4, 8, 16, 32, 64] {
                print!(" {:>5.1}", comm_pct(&w, c, np));
            }
            println!();
        }
    }

    println!("\n== MetUM — paper Fig 6 t8: vayu 963, dcc 1486, ec2 812, ec2-4 646");
    let m = MetUm::default();
    for np in [8usize, 16, 32, 64] {
        let mut job = m.build(np);
        let mem = m.memory_per_rank_bytes(np);
        let mut row = format!("np={np:>2}");
        for (c, strat) in [
            (&platforms[2], Strategy::Block),
            (&platforms[0], Strategy::Block),
            (
                &platforms[1],
                Strategy::BlockMemoryAware {
                    per_rank_bytes: mem,
                },
            ),
            (&platforms[1], Strategy::Spread { nodes: 4 }),
        ] {
            let cfg = SimConfig {
                strategy: strat,
                ..Default::default()
            };
            match profile_run(&mut job, c, &cfg) {
                Ok((_, rep)) => {
                    row += &format!("  {:>7.0}", warmed_secs(&rep));
                }
                Err(e) => {
                    row += &format!("  err:{e:>3}");
                }
            }
        }
        println!("{row}   (vayu dcc ec2 ec2-4)");
    }

    println!("\n== Table III @32: time/rcomp/rcomm/%comm/%imbal/IO");
    println!("paper: vayu 303/1.0/1.0/13/13/4.5  dcc 624/1.37/6.71/42/4/37.8  ec2 770/2.39/3.53/18/18/9.1  ec2-4 380/1.17/1.0/18/19/7.6");
    let mut job32 = m.build(32);
    let mem32 = m.memory_per_rank_bytes(32);
    let (vres, vrep) = profile_run(&mut job32, &platforms[2], &SimConfig::default()).unwrap();
    let vwall = warmed_secs(&vrep);
    let vcomp = vres.comp_total_secs();
    let vcomm = vres.comm_total_secs();
    for (name, c, strat) in [
        ("vayu", &platforms[2], Strategy::Block),
        ("dcc", &platforms[0], Strategy::Block),
        (
            "ec2",
            &platforms[1],
            Strategy::BlockMemoryAware {
                per_rank_bytes: mem32,
            },
        ),
        ("ec2-4", &platforms[1], Strategy::Spread { nodes: 4 }),
    ] {
        let cfg = SimConfig {
            strategy: strat,
            ..Default::default()
        };
        let (res, rep) = profile_run(&mut job32, c, &cfg).unwrap();
        println!(
            "sim {:<6} t={:>5.0} rcomp={:>4.2} rcomm={:>5.2} %comm={:>4.1} %imbal={:>4.1} io={:>5.1}  (nodes={})",
            name,
            warmed_secs(&rep) / vwall * 303.0,
            res.comp_total_secs() / vcomp,
            res.comm_total_secs() / vcomm,
            res.comm_pct(),
            rep.global.imbalance_pct(),
            res.io_secs_max(),
            res.placement.nodes_used(),
        );
    }

    println!("\n== Chaste — paper Fig 5 t8: vayu total 1017/KSp 579 (dcc total 1599/KSp 938; legend garbled in source)");
    let ch = Chaste::default();
    for (name, c) in [("vayu", &platforms[2]), ("dcc", &platforms[0])] {
        for np in [8usize, 16, 32, 64] {
            let mut job = ch.build(np);
            let (res, rep) = profile_run(&mut job, c, &SimConfig::default()).unwrap();
            let ksp = rep.section("KSp").unwrap().wall.mean;
            println!(
                "sim {name} np={np:>2}  total {:>6.0}  KSp {:>6.0}  %comm {:>4.1}",
                res.elapsed_secs(),
                ksp,
                res.comm_pct()
            );
        }
    }
}
