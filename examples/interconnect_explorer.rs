//! What-if explorer: swap one platform component at a time and watch the
//! paper's conclusions move.
//!
//! The paper's key finding is "the importance of (a) the cluster
//! interconnect ... and (b) the need to avoid over-subscription of cores".
//! Because every component here is an explicit model, we can ask the
//! questions the paper couldn't: what would DCC look like with InfiniBand?
//! With NUMA exposed to the guest? Without the hypervisor at all?
//!
//! ```text
//! cargo run --release --example interconnect_explorer
//! ```

use cloudsim::prelude::*;
use cloudsim::sim_net::{FabricParams, Topology};
use cloudsim::sim_platform::HypervisorModel;
use cloudsim::{fmt_pct, fmt_ratio, Table};

/// DCC upgraded with a QDR InfiniBand fabric (same VMs, same NFS).
fn dcc_with_ib() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc+ib";
    c.topology = Topology::single_switch(FabricParams::qdr_infiniband(), c.topology.intra.clone());
    c
}

/// DCC with guest-visible NUMA (hypervisor affinity support).
fn dcc_numa_exposed() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc+numa";
    c.node.hypervisor.numa_masked = false;
    c
}

/// DCC bare metal: the same blades without ESX at all.
fn dcc_bare_metal() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc-bare";
    c.node.hypervisor = HypervisorModel::bare_metal();
    c
}

fn main() {
    let variants: Vec<ClusterSpec> = vec![
        presets::dcc(),
        dcc_with_ib(),
        dcc_numa_exposed(),
        dcc_bare_metal(),
        presets::vayu(),
    ];

    for (kernel, np) in [(Kernel::Cg, 32usize), (Kernel::Is, 32), (Kernel::Ep, 32)] {
        let w = Npb::new(kernel, Class::A);
        let mut table = Table::new(
            format!("What-if: {} at np={np}", w.name()),
            vec!["platform", "elapsed_s", "vs_dcc", "%comm"],
        );
        let runs = cloudsim::parallel_map(variants.clone(), |c| {
            let (res, _) = cloudsim::Experiment::new(&w, &c, np)
                .run_min()
                .expect("variant run");
            (c.name, res.elapsed_secs(), res.comm_pct())
        });
        let base = runs[0].1;
        for (name, secs, comm) in runs {
            table.row(vec![
                name.to_string(),
                format!("{secs:.2}"),
                fmt_ratio(secs / base),
                fmt_pct(comm),
            ]);
        }
        println!("{}", table.to_text());
    }
    println!("reading: the interconnect swap (dcc+ib) recovers most of CG/IS's loss;");
    println!("NUMA exposure helps the memory-bound kernels; EP never cared about any of it.");
}
