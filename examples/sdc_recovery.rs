//! Silent data corruption: inject bit flips into a run and compare the
//! three recovery strategies the engine supports.
//!
//! ```text
//! cargo run --release --example sdc_recovery
//! ```
//!
//! A silent flip corrupts in-memory state without crashing anything; it is
//! only noticed when a checksum pass looks. With checkpoint/restart alone,
//! every detected corruption relaunches the job. ABFT verification cuts
//! (checksum-augmented solvers, see `numerics::cg_abft`) detect corruption
//! between checkpoints and roll the live ranks back in place; adding a
//! spare-node pool also absorbs fatal preemptions without a relaunch.

use cloudsim::prelude::*;

fn main() {
    let workload = MetUm { timesteps: 4 };
    let np = 16;
    let cluster = presets::ec2();

    // Fault-free baseline.
    let (base, _) = cloudsim::Experiment::new(&workload, &cluster, np)
        .run_once()
        .expect("baseline");
    let t0 = base.elapsed_secs();
    println!(
        "{} on {} x{np} ranks: fault-free {t0:.1} s\n",
        workload.name(),
        cluster.name
    );

    // EC2 preset plus silent flips, rates calibrated to the demo's runtime
    // (and intensity-scaled 4x, as in the fault_tolerance example) so this
    // short run actually sees corruptions and preemptions.
    let preset = FaultSpec::preset_for(&cluster);
    let model = preset
        .model
        .clone()
        .with_rates_scaled(8.0 * 3600.0 / t0)
        .with_sdc(1.5 * 3600.0 / t0, 1.0)
        .scaled(4.0);

    // Checkpoint every ~8th world collective; verify twice as often —
    // a cheap checksum pass between checkpoints.
    let ckpt = CheckpointPolicy::new(8, 1 << 20);
    let vpol = VerifyPolicy::new(4, 1e7, 1 << 20);
    let verified = Verified::new(&workload, vpol);
    let restart_w = Checkpointed::new(&workload, ckpt);
    let abft_w = Checkpointed::new(&verified, ckpt);

    let runs: [(&str, &dyn Workload, RecoveryStrategy); 3] = [
        ("checkpoint/restart", &restart_w, RecoveryStrategy::Restart),
        ("ABFT rollback", &abft_w, RecoveryStrategy::AbftRollback),
        (
            "shrink + spare pool",
            &abft_w,
            RecoveryStrategy::ShrinkSpare {
                spares: 4,
                respawn_delay_secs: 0.01 * t0,
            },
        ),
    ];
    for (label, w, recovery) in runs {
        let spec = FaultSpec {
            model: model.clone(),
            horizon_secs: 50.0 * t0,
            recovery,
            ..preset.clone()
        };
        let (res, report) = cloudsim::Experiment::new(w, &cluster, np)
            .faults(spec)
            .run_once()
            .expect("faulty run");
        println!(
            "{label:>20}: elapsed {:>7.1} s   restarts {}  rollbacks {}  shrinks {}   SDC {} caught / {} missed",
            res.elapsed_secs(),
            res.restarts,
            res.rollbacks,
            res.shrinks,
            res.sdc_detected,
            res.sdc_undetected,
        );
        if matches!(recovery, RecoveryStrategy::ShrinkSpare { .. }) {
            println!("\n{}", report.to_text());
        }
    }
}
