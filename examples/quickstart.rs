//! Quickstart: run one benchmark on all three platform models and read the
//! IPM-style report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudsim::prelude::*;

fn main() {
    // The NPB conjugate-gradient kernel, class A, on 16 ranks — the
    // latency-sensitive benchmark the paper uses to show how much the
    // interconnect matters.
    let workload = Npb::new(Kernel::Cg, Class::A);
    let np = 16;

    println!("workload: {} on {} ranks\n", workload.name(), np);
    for cluster in [presets::vayu(), presets::ec2(), presets::dcc()] {
        let (result, report) = cloudsim::Experiment::new(&workload, &cluster, np)
            .run_min()
            .expect("simulation failed");
        println!(
            "{:>5}: elapsed {:>8.2} s   %comm {:>5.1}   comp-imbalance {:>4.1}%   ({} nodes)",
            cluster.name,
            result.elapsed_secs(),
            result.comm_pct(),
            report.global.imbalance_pct(),
            result.placement.nodes_used(),
        );
    }

    // Full IPM banner for the platform the paper finds most interesting.
    let cluster = presets::dcc();
    let (_, report) = cloudsim::Experiment::new(&workload, &cluster, np)
        .run_min()
        .expect("simulation failed");
    println!("\n{}", report.to_text());
}
