//! The ARRIVE-F cloud-bursting experiment: does offloading cloud-friendly
//! jobs actually cut queue waits on a contended supercomputer?
//!
//! Reproduces the claim in the paper's motivation section ("able to improve
//! the average job waiting times by up to 33%") with a discrete-event batch
//! queue over profiled NPB jobs.
//!
//! ```text
//! cargo run --release --example batch_queue [n_jobs] [seed]
//! ```

use cloudsim::{arrive_f_table, simulate_queue, synthetic_mix, Capacities, Policy, Site};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_jobs: usize = args
        .first()
        .map(|s| s.parse().expect("n_jobs"))
        .unwrap_or(80);
    let seed: u64 = args.get(1).map(|s| s.parse().expect("seed")).unwrap_or(42);

    println!("{}", arrive_f_table(n_jobs, seed).to_text());

    // A closer look at one contended scenario.
    let jobs = synthetic_mix(n_jobs, 1.3, seed);
    let caps = Capacities::default();
    let stats = simulate_queue(&jobs, caps, Policy::CloudBurst { threshold: 0.55 });
    let mut by_site = [0usize; 3];
    for s in &stats.jobs {
        by_site[match s.site {
            Site::Vayu => 0,
            Site::Dcc => 1,
            Site::Ec2 => 2,
        }] += 1;
    }
    println!(
        "at load 1.3: {} jobs -> vayu {}, dcc {}, ec2 {}; mean wait {:.1}s, mean turnaround {:.1}s",
        n_jobs, by_site[0], by_site[1], by_site[2], stats.mean_wait, stats.mean_turnaround
    );

    // The jobs that benefited most.
    let mut sorted = stats.jobs.clone();
    sorted.sort_by(|a, b| b.wait.partial_cmp(&a.wait).unwrap());
    println!("\nworst five waits under cloud-bursting (all on the HPC partition):");
    for s in sorted.iter().take(5) {
        println!(
            "  job {:>3} on {:?}: waited {:.1}s, ran {:.1}s",
            s.id, s.site, s.wait, s.runtime
        );
    }
}
