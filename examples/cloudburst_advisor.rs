//! The cloud-bursting advisor: should this job leave the supercomputer?
//!
//! Implements the workflow the paper's motivation section sketches: profile
//! a candidate workload (ARRIVE-F style), classify its cloud-friendliness,
//! and rank the platforms by predicted time *and* by predicted dollars —
//! including the EC2 spot pricing the paper's future work planned to
//! integrate into the ANUPBS scheduler.
//!
//! Since the advisor became a service (`sim-advisor`), every `advise()`
//! call below routes through the content-addressed query cache, and the
//! second half of this example exercises the service layer directly:
//! batched what-if fleets, cache statistics, and a snapshot round-trip.
//! All output is deterministic — CI diffs two runs (and two thread
//! counts) of this example byte for byte.
//!
//! ```text
//! cargo run --release --example cloudburst_advisor
//! ```

use cloudsim::prelude::*;
use cloudsim::sim_advisor::{AdvisorService, PlatformId, Query, QueryPolicy, WorkloadId};
use cloudsim::sim_sweep::SweepOpts;
use cloudsim::{advise, PriceModel};

fn main() {
    println!("== per-workload advice (class A, 32 ranks) ==\n");
    let candidates: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Ep, Class::A)),
        Box::new(Npb::new(Kernel::Mg, Class::A)),
        Box::new(Npb::new(Kernel::Cg, Class::A)),
        Box::new(Npb::new(Kernel::Is, Class::A)),
    ];
    for w in &candidates {
        let rec = advise(w.as_ref(), 32);
        println!(
            "{}",
            rec.to_table(&format!("advice: {} @ 32 ranks", w.name()))
                .to_text()
        );
    }

    println!("== deadline shopping ==\n");
    let w = Npb::new(Kernel::Mg, Class::A);
    let rec = advise(&w, 32);
    for deadline in [0.5f64, 2.0, 20.0] {
        match rec.best_within_deadline(deadline) {
            Some(f) => println!(
                "deadline {deadline:>5.1}s: run on {:<5} ({:.2}s, ${:.2} on-demand, ${:.2} spot)",
                f.platform, f.elapsed_secs, f.on_demand_cost, f.spot_cost
            ),
            None => println!("deadline {deadline:>5.1}s: no platform meets it"),
        }
    }

    println!("\n== what a year of EC2 spot would cost vs the private cloud ==\n");
    let ec2 = PriceModel::ec2_2012();
    let dcc = PriceModel::private_cloud();
    // A daily 2-hour 4-node production run.
    let per_run_secs = 2.0 * 3600.0;
    let yearly_spot = ec2.spot_cost(4, per_run_secs) * 365.0;
    let yearly_dcc = dcc.cost(4, per_run_secs) * 365.0;
    println!(
        "daily 4-node 2h run: EC2 spot ${yearly_spot:.0}/yr vs private cloud ${yearly_dcc:.0}/yr"
    );

    // ---- the service layer: batched what-if fleets -------------------
    println!("\n== what-if fleet through the advisor service ==\n");
    let svc = AdvisorService::new();
    let fleet = build_fleet();
    let opts = SweepOpts::default();
    let cold = svc.evaluate_fleet(&fleet, &opts).expect("fleet evaluates");
    let s = svc.stats();
    println!(
        "cold fleet: {} queries, digest {:#018x}, cache {} hits / {} misses / {} entries",
        fleet.len(),
        cold.digest,
        s.hits,
        s.misses,
        s.len
    );
    let warm = svc.evaluate_fleet(&fleet, &opts).expect("fleet evaluates");
    let s = svc.stats();
    println!(
        "warm fleet: {} queries, digest {:#018x}, cache {} hits / {} misses / {} entries",
        fleet.len(),
        warm.digest,
        s.hits,
        s.misses,
        s.len
    );
    println!(
        "digests identical across cold/warm: {}",
        cold.digest == warm.digest
    );

    // The burst question, fleet-style: for every cached CG verdict, which
    // platform wins on time and which on dollars?
    let burst = |platform: PlatformId, np: u32| {
        svc.evaluate(&Query::new(
            WorkloadId::Npb {
                kernel: Kernel::Cg,
                class: Class::W,
            },
            platform,
            np,
        ))
        .expect("query evaluates")
    };
    for np in [8u32, 16, 32] {
        let picks: Vec<(PlatformId, _)> =
            PlatformId::ALL.iter().map(|&p| (p, burst(p, np))).collect();
        let fastest = picks
            .iter()
            .min_by(|a, b| a.1.elapsed_secs.total_cmp(&b.1.elapsed_secs))
            .expect("three platforms");
        let cheapest = picks
            .iter()
            .min_by(|a, b| a.1.on_demand_cost.total_cmp(&b.1.on_demand_cost))
            .expect("three platforms");
        println!(
            "cg.W @ {np:>2} ranks: fastest {} ({:.3}s), cheapest {} (${:.2})",
            fastest.0.name(),
            fastest.1.elapsed_secs,
            cheapest.0.name(),
            cheapest.1.on_demand_cost
        );
    }

    // ---- snapshot round-trip -----------------------------------------
    println!("\n== snapshot: ship the warmed cache ==\n");
    let bytes = svc.snapshot_bytes();
    let restored = AdvisorService::new();
    let loaded = restored
        .load_snapshot_bytes(&bytes)
        .expect("snapshot loads");
    let requeried = restored
        .evaluate_fleet(&fleet, &opts)
        .expect("fleet evaluates");
    println!(
        "snapshot: {} bytes, {} verdicts; reloaded fleet digest {:#018x}, byte-identical: {}",
        bytes.len(),
        loaded,
        requeried.digest,
        requeried.digest == cold.digest
    );
    let rs = restored.stats();
    println!(
        "restored service: {} hits, {} misses — the warmed cache answered everything",
        rs.hits, rs.misses
    );
}

/// A deterministic what-if fleet: every NPB kernel that accepts the rank
/// count, classes S and W, three rank counts, all three platforms.
fn build_fleet() -> Vec<Query> {
    let mut fleet = Vec::new();
    for kernel in [
        Kernel::Bt,
        Kernel::Cg,
        Kernel::Ep,
        Kernel::Ft,
        Kernel::Is,
        Kernel::Lu,
        Kernel::Mg,
        Kernel::Sp,
    ] {
        for class in [Class::S, Class::W] {
            for np in [4u32, 16, 64] {
                if !kernel.valid_np(np as usize) {
                    continue;
                }
                for platform in PlatformId::ALL {
                    fleet.push(
                        Query::new(WorkloadId::Npb { kernel, class }, platform, np)
                            .with_policy(QueryPolicy::Auto),
                    );
                }
            }
        }
    }
    fleet
}
