//! The cloud-bursting advisor: should this job leave the supercomputer?
//!
//! Implements the workflow the paper's motivation section sketches: profile
//! a candidate workload (ARRIVE-F style), classify its cloud-friendliness,
//! and rank the platforms by predicted time *and* by predicted dollars —
//! including the EC2 spot pricing the paper's future work planned to
//! integrate into the ANUPBS scheduler.
//!
//! ```text
//! cargo run --release --example cloudburst_advisor
//! ```

use cloudsim::prelude::*;
use cloudsim::{advise, PriceModel};

fn main() {
    println!("== per-workload advice (class A, 32 ranks) ==\n");
    let candidates: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Ep, Class::A)),
        Box::new(Npb::new(Kernel::Mg, Class::A)),
        Box::new(Npb::new(Kernel::Cg, Class::A)),
        Box::new(Npb::new(Kernel::Is, Class::A)),
    ];
    for w in &candidates {
        let rec = advise(w.as_ref(), 32);
        println!(
            "{}",
            rec.to_table(&format!("advice: {} @ 32 ranks", w.name()))
                .to_text()
        );
    }

    println!("== deadline shopping ==\n");
    let w = Npb::new(Kernel::Mg, Class::A);
    let rec = advise(&w, 32);
    for deadline in [0.5f64, 2.0, 20.0] {
        match rec.best_within_deadline(deadline) {
            Some(f) => println!(
                "deadline {deadline:>5.1}s: run on {:<5} ({:.2}s, ${:.2} on-demand, ${:.2} spot)",
                f.platform, f.elapsed_secs, f.on_demand_cost, f.spot_cost
            ),
            None => println!("deadline {deadline:>5.1}s: no platform meets it"),
        }
    }

    println!("\n== what a year of EC2 spot would cost vs the private cloud ==\n");
    let ec2 = PriceModel::ec2_2012();
    let dcc = PriceModel::private_cloud();
    // A daily 2-hour 4-node production run.
    let per_run_secs = 2.0 * 3600.0;
    let yearly_spot = ec2.spot_cost(4, per_run_secs) * 365.0;
    let yearly_dcc = dcc.cost(4, per_run_secs) * 365.0;
    println!(
        "daily 4-node 2h run: EC2 spot ${yearly_spot:.0}/yr vs private cloud ${yearly_dcc:.0}/yr"
    );
}
