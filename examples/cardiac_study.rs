//! Cardiac-model study: the real mathematics behind the Chaste benchmark,
//! then its simulated scaling across platforms.
//!
//! Part 1 solves an actual monodomain-style SPD linear system with the
//! `numerics` conjugate-gradient solver and shows the iteration/flop
//! structure the workload model charges per timestep. Part 2 replays the
//! paper's Figure 5 experiment (Vayu vs DCC, total and KSp section).
//!
//! ```text
//! cargo run --release --example cardiac_study
//! ```

use cloudsim::numerics::{cg_iter_flops, cg_solve, Csr, CG_DOTS_PER_ITER};
use cloudsim::prelude::*;
use cloudsim::{fmt_ratio, fmt_secs, Table};

fn main() {
    // --- Part 1: a real CG solve on a 2-D "tissue sheet" ---
    println!("Part 1 — a real conjugate-gradient solve (numerics crate)\n");
    let (nx, ny) = (96, 96);
    let a = Csr::poisson_2d(nx, ny);
    // Manufactured solution: a smooth activation wavefront.
    let exact: Vec<f64> = (0..a.n)
        .map(|i| {
            let x = (i / ny) as f64 / nx as f64;
            let y = (i % ny) as f64 / ny as f64;
            (6.0 * (x - 0.4)).tanh() * (-4.0 * (y - 0.5).powi(2)).exp()
        })
        .collect();
    let mut rhs = vec![0.0; a.n];
    a.spmv(&exact, &mut rhs);
    let mut x = vec![0.0; a.n];
    let stats = cg_solve(&a, &rhs, &mut x, 1e-9, 2000);
    let err = x
        .iter()
        .zip(&exact)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    println!("  unknowns           : {}", a.n);
    println!("  nonzeros           : {}", a.nnz());
    println!("  iterations         : {}", stats.iterations);
    println!("  max error          : {err:.2e}");
    println!("  measured flops     : {:.3e}", stats.flops);
    println!(
        "  model flops/iter   : {:.3e}  (formula the workload model uses)",
        cg_iter_flops(a.n, a.nnz())
    );
    println!(
        "  allreduces/iter    : {CG_DOTS_PER_ITER}  (the paper's '4-byte all-reduce' stream)\n"
    );

    // --- Part 2: the Figure 5 experiment ---
    println!("Part 2 — simulated Chaste scaling (paper Figure 5)\n");
    let w = Chaste::default();
    let mut table = Table::new(
        "Chaste rabbit-heart benchmark: wall and KSp-section time (s)",
        vec![
            "np",
            "vayu_total",
            "vayu_KSp",
            "dcc_total",
            "dcc_KSp",
            "dcc/vayu",
        ],
    );
    for np in [8usize, 16, 32, 64] {
        let mut cells = vec![np.to_string()];
        let mut totals = Vec::new();
        for cluster in [presets::vayu(), presets::dcc()] {
            let (res, rep) = cloudsim::Experiment::new(&w, &cluster, np)
                .run_min()
                .expect("chaste run");
            let ksp = rep.section("KSp").expect("KSp").wall.mean;
            cells.push(fmt_secs(res.elapsed_secs()));
            cells.push(fmt_secs(ksp));
            totals.push(res.elapsed_secs());
        }
        cells.push(fmt_ratio(totals[1] / totals[0]));
        table.row(cells);
    }
    table.note("paper t8: Vayu 1017 total / 579 KSp; DCC ~1.5-1.6x slower and flattening with np");
    println!("{}", table.to_text());
}
