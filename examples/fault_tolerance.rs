//! Fault tolerance: inject the platform fault models into a run and compare
//! restart-from-scratch against coordinated checkpoint/restart.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! EC2 spot instances are the interesting case: preemptions kill the job
//! mid-run, and without checkpoints every preemption replays the whole job.

use cloudsim::prelude::*;
use cloudsim::workloads::{CheckpointPolicy, Checkpointed};

fn main() {
    let workload = MetUm { timesteps: 4 };
    let np = 16;
    let cluster = presets::ec2();

    // Fault-free baseline.
    let (base, _) = cloudsim::Experiment::new(&workload, &cluster, np)
        .run_once()
        .expect("baseline");
    let t0 = base.elapsed_secs();
    println!(
        "{} on {} x{np} ranks: fault-free {t0:.1} s\n",
        workload.name(),
        cluster.name
    );

    // The EC2 preset: NIC degradation, steal storms, NFS brownouts and spot
    // preemptions. Rates are scaled up so this short demo actually sees
    // faults; `scaled(4.0)` then quadruples every class's intensity.
    let preset = FaultSpec::preset_for(&cluster);
    let spec = FaultSpec {
        model: preset
            .model
            .clone()
            .with_rates_scaled(8.0 * 3600.0 / t0)
            .scaled(4.0),
        horizon_secs: 50.0 * t0,
        ..preset
    };

    // Checkpoint every ~10th world collective, 1 MiB of state per rank.
    let ckpt = Checkpointed::new(&workload, CheckpointPolicy::new(10, 1 << 20));

    for (label, w) in [
        ("restart from scratch", &workload as &dyn Workload),
        ("checkpoint/restart", &ckpt),
    ] {
        let (res, report) = cloudsim::Experiment::new(w, &cluster, np)
            .faults(spec.clone())
            .run_once()
            .expect("faulty run");
        println!(
            "{label:>20}: elapsed {:>7.1} s   restarts {}   fault time {:>5.1}% of wallclock",
            res.elapsed_secs(),
            res.restarts,
            res.fault_pct(),
        );
        if res.restarts > 0 && label.starts_with("checkpoint") {
            println!("\n{}", report.to_text());
        }
    }
}
