//! The cluster scheduler subsystem end to end: a 50-job Lublin-style
//! synthetic arrival mix pushed through every queue discipline on every
//! platform's 16-node partition, with link contention on.
//!
//! Shows the two headline effects of `sim-sched`:
//! * backfilling (EASY / conservative) cuts mean waits hard at load
//!   without ever delaying the queue head (the EASY invariant);
//! * placement decides who shares interconnect links, and therefore how
//!   much contention inflation the batch pays.
//!
//! ```text
//! cargo run --release --example cluster_sched [n_jobs] [seed]
//! ```

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    lublin_mix, sched_report, simulate_site, Discipline, NodePool, PlacementPolicy, SiteConfig,
};
use cloudsim::{presets, Table};

const POOL_NODES: usize = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_jobs: usize = args
        .first()
        .map(|s| s.parse().expect("n_jobs"))
        .unwrap_or(50);
    let seed: u64 = args.get(1).map(|s| s.parse().expect("seed")).unwrap_or(42);

    let jobs = lublin_mix(n_jobs, POOL_NODES, 1.3, seed);
    println!(
        "{} jobs on a {}-node partition at load 1.3 (seed {seed})\n",
        jobs.len(),
        POOL_NODES
    );

    let mut t = Table::new(
        "Queue disciplines across platforms — mean wait / makespan / contention inflation",
        vec![
            "platform",
            "discipline",
            "mean_wait_s",
            "makespan_s",
            "inflation_s",
            "head_delays",
        ],
    );
    let disciplines = [
        Discipline::Fcfs,
        Discipline::Easy,
        Discipline::Conservative,
        Discipline::NaiveBackfill,
    ];
    for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
        for d in disciplines {
            let cfg = SiteConfig::new(
                NodePool::partition_of(&cluster, POOL_NODES),
                PlacementPolicy::RackAware,
                d,
                ContentionParams::for_fabric(&cluster.topology.inter),
            );
            let res = simulate_site(&jobs, &cfg).expect("mix is valid");
            t.row(vec![
                cluster.name.to_string(),
                d.name().to_string(),
                format!("{:.1}", res.mean_wait),
                format!("{:.1}", res.makespan),
                format!("{:.1}", res.total_inflation),
                res.head_delay_violations.to_string(),
            ]);
        }
    }
    t.note(
        "naive backfill ignores the head's reservation — head_delays counts the jobs it starved",
    );
    t.note("EASY/conservative keep head_delays at 0 by construction; the wait cut is free");
    println!("{}", t.to_text());

    // Per-job attribution on the most contended cell: EASY on the DCC
    // vSwitch fabric.
    let dcc = presets::dcc();
    let cfg = SiteConfig::new(
        NodePool::partition_of(&dcc, POOL_NODES),
        PlacementPolicy::RackAware,
        Discipline::Easy,
        ContentionParams::for_fabric(&dcc.topology.inter),
    );
    let res = simulate_site(&jobs, &cfg).expect("mix is valid");
    println!(
        "{}",
        sched_report("dcc (EASY, rack-aware)", &jobs, &res).to_text()
    );
}
