//! Export a Chrome-tracing timeline of a simulated run.
//!
//! Writes `metum_dcc_32.trace.json`; open it in `chrome://tracing` or
//! https://ui.perfetto.dev to *see* the paper's Figure 7: the banded
//! load imbalance across ranks 8..23 and DCC's long MPI stalls.
//!
//! ```text
//! cargo run --release --example timeline_trace [vayu|dcc|ec2]
//! ```

use cloudsim::prelude::*;
use cloudsim::sim_ipm::trace_run;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "dcc".to_string());
    let cluster = match which.as_str() {
        "vayu" => presets::vayu(),
        "ec2" => presets::ec2(),
        "dcc" => presets::dcc(),
        other => panic!("unknown platform {other}"),
    };
    // Two timesteps keep the JSON readable (~10k spans).
    let w = MetUm { timesteps: 2 };
    let mut job = w.build(32);
    let (result, trace) = trace_run(&mut job, &cluster, &SimConfig::default()).expect("run");
    println!(
        "simulated {} on {}: {:.1}s wall, {} timeline spans",
        job.meta.name,
        cluster.name,
        result.elapsed_secs(),
        trace.len()
    );
    let path = format!("metum_{}_32.trace.json", cluster.name);
    std::fs::write(&path, trace.to_chrome_json(&job.meta.name)).expect("write trace");
    println!("wrote {path} — open in chrome://tracing or ui.perfetto.dev");

    // A taste of the data without leaving the terminal: rank 8 (inside the
    // paper's imbalance band) vs rank 0.
    for rank in [0usize, 8] {
        let spans = trace.rank_spans(rank);
        let mpi: f64 = spans
            .iter()
            .filter(|s| s.cat == "mpi")
            .map(|s| s.end.since(s.start).as_secs_f64())
            .sum();
        let comp: f64 = spans
            .iter()
            .filter(|s| s.cat == "comp")
            .map(|s| s.end.since(s.start).as_secs_f64())
            .sum();
        println!("rank {rank:>2}: compute {comp:>7.2}s  mpi {mpi:>6.2}s");
    }
}
