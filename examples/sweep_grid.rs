//! Deterministic parallel sweep demo: a (seed x load) grid of streaming
//! scheduler simulations fanned over worker threads, plus the schedsweep
//! figure, each reduced to a digest that is bit-identical for every
//! thread count.
//!
//! CI runs this twice — `RAYON_NUM_THREADS=2` and `=nproc` — and diffs
//! the stdout: any thread-count-dependent byte is a build failure.
//! Timings go to stderr so the diffed output stays pure.

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    simulate_site_stream, Discipline, LublinMix, NodePool, PlacementPolicy, SiteConfig,
};
use cloudsim::sim_sweep::{cell_seed, fnv64, sweep, MergedDigest, SweepOpts};
use cloudsim::{figures, presets, ReproConfig};
use std::time::Instant;

const SEEDS: usize = 16;
const LOADS: [f64; 3] = [0.7, 1.0, 1.3];
const JOBS_PER_CELL: usize = 400;

fn main() {
    let opts = SweepOpts::default();
    eprintln!("workers: {}", opts.resolved_threads());

    // Part 1: the schedsweep figure through the harness — the table text
    // (and so its digest) must not depend on the worker count.
    let t0 = Instant::now();
    let table = figures::schedsweep_with(&ReproConfig::quick(), &opts);
    eprintln!("schedsweep: {:.2?}", t0.elapsed());
    println!(
        "schedsweep digest: {:016x}",
        fnv64(table.to_text().as_bytes())
    );

    // Part 2: a (seed x load) grid over the streaming simulator. Each cell
    // derives its own seed from (base, cell), runs a 400-job Lublin mix
    // through `simulate_site_stream`, digests every outcome, and folds the
    // digest into an order-independent MergedDigest.
    let n_cells = SEEDS * LOADS.len();
    let t1 = Instant::now();
    let (digest, completed) = sweep(
        n_cells,
        &opts,
        || (MergedDigest::new(), 0u64),
        |cell, acc: &mut (MergedDigest, u64)| {
            let cluster = presets::dcc();
            let load = LOADS[cell % LOADS.len()];
            let site = SiteConfig::new(
                NodePool::partition_of(&cluster, 32),
                PlacementPolicy::RackAware,
                Discipline::Easy,
                ContentionParams::for_fabric(&cluster.topology.inter),
            );
            let jobs = LublinMix::new(JOBS_PER_CELL, 32, load, cell_seed(0x5EED_C311, cell as u64));
            let mut text = String::new();
            let stats = simulate_site_stream(jobs, &site, |o| {
                text.push_str(&format!(
                    "{} {:x} {:x} {} {}\n",
                    o.id,
                    o.start.to_bits(),
                    o.end.to_bits(),
                    o.nodes,
                    o.completed
                ));
            })
            .expect("grid mixes are valid");
            acc.0.absorb(cell as u64, fnv64(text.as_bytes()));
            acc.1 += stats.completed as u64;
        },
        |total, part| {
            total.0.merge(part.0);
            total.1 += part.1;
        },
    );
    let dt = t1.elapsed();
    eprintln!(
        "stream grid: {n_cells} cells, {:.2?} ({:.0} cells/s)",
        dt,
        n_cells as f64 / dt.as_secs_f64()
    );
    println!("stream grid cells: {n_cells}");
    println!("stream grid completed jobs: {completed}");
    println!("stream grid digest: {:016x}", digest.value());
}
