//! Cloud-bursting decision demo: which of my workloads can move from the
//! supercomputer to a cloud without falling off a performance cliff?
//!
//! This is the question that motivates the paper ("the users' jobs could be
//! better run on a cheaper private cloud, or even a public cloud"). We run
//! the whole NPB suite at a fixed rank count on all three platforms and
//! rank the kernels by their cloud slowdown.
//!
//! ```text
//! cargo run --release --example cloud_comparison [class] [np]
//! ```

use cloudsim::prelude::*;
use cloudsim::{fmt_pct, fmt_ratio, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let class = match args.first().map(String::as_str) {
        Some("S") => Class::S,
        Some("W") | None => Class::W,
        Some("A") => Class::A,
        Some("B") => Class::B,
        Some("C") => Class::C,
        Some(other) => panic!("unknown class {other}"),
    };
    let np: usize = args.get(1).map(|s| s.parse().expect("np")).unwrap_or(16);

    let mut table = Table::new(
        format!(
            "Cloud slowdown of NPB class {} at np={np} (time / Vayu time)",
            class.letter()
        ),
        vec![
            "kernel",
            "ec2_slowdown",
            "dcc_slowdown",
            "%comm_vayu",
            "%comm_dcc",
            "verdict",
        ],
    );

    let rows = cloudsim::parallel_map(Kernel::all().to_vec(), |k| {
        // BT/SP need square counts; snap down.
        let np_k = if matches!(k, Kernel::Bt | Kernel::Sp) {
            let q = (np as f64).sqrt().floor() as usize;
            (q * q).max(1)
        } else {
            np
        };
        let w = Npb::new(k, class);
        let run = |c: &ClusterSpec| {
            cloudsim::Experiment::new(&w, c, np_k)
                .run_min()
                .expect("run")
                .0
        };
        let vayu = run(&presets::vayu());
        let ec2 = run(&presets::ec2());
        let dcc = run(&presets::dcc());
        let ec2_slow = ec2.elapsed_secs() / vayu.elapsed_secs();
        let dcc_slow = dcc.elapsed_secs() / vayu.elapsed_secs();
        let verdict = if dcc_slow < 1.6 {
            "cloud-friendly"
        } else if ec2_slow < 2.0 {
            "public cloud only"
        } else {
            "keep on the supercomputer"
        };
        vec![
            w.name(),
            fmt_ratio(ec2_slow),
            fmt_ratio(dcc_slow),
            fmt_pct(vayu.comm_pct()),
            fmt_pct(dcc.comm_pct()),
            verdict.to_string(),
        ]
    });
    for r in rows {
        table.row(r);
    }
    table.note("the paper's finding: minimal-communication workloads (EP) are the best cloud fit;");
    table.note("communication-intensive ones (IS, CG) suffer most on commodity interconnects");
    println!("{}", table.to_text());
}
