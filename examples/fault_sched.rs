//! Fault-tolerant scheduling end to end: a seeded Lublin mix runs on
//! ec2's 32-node partition while the platform's fault preset crashes and
//! degrades nodes under it. Crashes kill co-located jobs and carve the
//! node out for an MTTR repair window; killed jobs requeue with
//! exponential backoff and checkpoint-aware restart; fail-slow nodes are
//! drained rather than crashed. The IPM-style report ends with the
//! KILL/REQUEUE/DRAIN/REPAIR attribution timeline.
//!
//! ```text
//! cargo run --release --example fault_sched [seed]
//! ```

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    lublin_mix, sched_report, simulate_site, CheckpointSpec, Discipline, NodePool, PlacementPolicy,
    RequeuePolicy, SiteConfig, SiteFaults,
};
use cloudsim::{figures, presets};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(figures::DEFAULT_SEED);

    let cluster = presets::ec2();
    let nodes = figures::SCHEDSWEEP_NODES;
    let jobs = lublin_mix(40, nodes, 1.1, seed);

    // Calibrate the preset against the fault-free makespan so the demo
    // reliably shows crashes (the raw per-node-hour rates are tuned for
    // datacenter-year horizons, not a one-hour synthetic batch).
    let site = || {
        SiteConfig::new(
            NodePool::partition_of(&cluster, nodes),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&cluster.topology.inter),
        )
    };
    let t0 = simulate_site(&jobs, &site())
        .expect("mix is valid")
        .makespan
        .max(1.0);
    let faults = SiteFaults::preset_for(&cluster, seed)
        .with_model(
            cloudsim::sim_faults::FaultModel::preset_for(&cluster)
                .with_rates_scaled(figures::FAULTSCHED_CALIB * 3600.0 / t0),
        )
        .with_horizon(4.0 * t0)
        .with_requeue(RequeuePolicy::default().with_checkpoint(CheckpointSpec {
            interval: 300.0,
            restore_cost: 30.0,
        }));
    println!(
        "{} jobs on a {nodes}-node ec2 partition (seed {seed:#x}), EASY + rack-aware:",
        jobs.len()
    );
    println!("  - fault-free makespan {t0:.0} s; fault rates calibrated to it");
    println!(
        "  - crashes carve the node out for MTTR {:.0} s; killed jobs requeue with backoff",
        faults.mttr_secs
    );
    println!("  - checkpoint every 300 s (restore 30 s): reruns owe only un-checkpointed work\n");

    let res = simulate_site(&jobs, &site().with_faults(faults)).expect("fault run is valid");
    println!(
        "{}",
        sched_report("ec2 (EASY, rack-aware, faults on)", &jobs, &res).to_text()
    );

    let s = res.fault_stats;
    println!(
        "faults: {} crashes -> {} kills, {} requeues, {} drains, {} repairs",
        s.crashes, s.kills, s.requeues, s.drains, s.repairs
    );
    println!(
        "work: {:.0} s lost to crashes, {:.0} s salvaged by checkpoints",
        s.work_lost_s, s.work_salvaged_s
    );
    let failed = res.outcomes.iter().filter(|o| !o.completed).count();
    println!(
        "batch: makespan {:.0} s ({:+.1}% vs fault-free), mean wait {:.0} s, {} terminal failures",
        res.makespan,
        100.0 * (res.makespan / t0 - 1.0),
        res.mean_wait,
        failed
    );
    assert!(
        res.outcomes.iter().all(|o| o.completed),
        "the default retry budget should finish every job in this demo"
    );
}
