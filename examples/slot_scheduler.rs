//! The slot-set scheduler's capabilities end to end: advance
//! reservations, a maintenance calendar, per-project quotas, job
//! dependencies and moldable jobs, all in one EASY-backfilled run on
//! vayu's partition — followed by the IPM-style per-job attribution
//! report with the job-class column.
//!
//! ```text
//! cargo run --release --example slot_scheduler [seed]
//! ```

use cloudsim::sim_sched::{sched_report, simulate_site};
use cloudsim::{figures, presets};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(figures::DEFAULT_SEED);

    let cluster = presets::vayu();
    let jobs = figures::slot_capabilities_jobs(seed);
    let cfg = figures::slot_capabilities_site(&cluster);
    println!(
        "{} jobs on a {}-node vayu partition (seed {seed:#x}):",
        jobs.len(),
        figures::SCHEDSWEEP_NODES
    );
    println!("  - every job billed to project id%3; project 0 capped at 8 concurrent nodes");
    println!("  - job 12 depends on job 6; job 24 depends on jobs 12 and 18");
    println!("  - jobs 4/13/22/31 are moldable (base, wide-fast, narrow-slow shapes)");
    println!("  - job 36 is an 8-node advance reservation at t=2500 s");
    println!("  - rack 0 is down for maintenance over [4000, 5000) s\n");

    let res = simulate_site(&jobs, &cfg).expect("scenario is valid");
    println!(
        "{}",
        figures::slot_capabilities(&cloudsim::ReproConfig::quick().with_seed(seed)).to_text()
    );
    println!(
        "{}",
        sched_report("vayu (EASY, rack-aware, slot-set)", &jobs, &res).to_text()
    );

    let resv = &res.outcomes[36];
    assert!((resv.start - 2500.0).abs() < 1e-6);
    println!(
        "reservation held: job 36 started at exactly {:.0} s on {} nodes",
        resv.start, resv.nodes
    );
    println!(
        "batch: mean wait {:.1} s, makespan {:.1} s, head delays {}",
        res.mean_wait, res.makespan, res.head_delay_violations
    );
}
