//! Climate-model placement study: MetUM on EC2, packed vs spread.
//!
//! Reproduces the paper's most actionable cloud finding: at 32 cores,
//! running MetUM on four EC2 instances (8 ranks each, no HyperThread
//! sharing) is almost twice as fast as packing the same 32 ranks onto two
//! instances — and memory capacity, not cores, decides the minimum node
//! count in the first place.
//!
//! ```text
//! cargo run --release --example climate_scaling
//! ```

use cloudsim::prelude::*;
use cloudsim::workloads::metum::warmed_secs;
use cloudsim::{fmt_pct, fmt_ratio, fmt_secs, Table};

fn main() {
    let w = MetUm::default();
    let ec2 = presets::ec2();

    // Memory-driven placement: how many nodes does each rank count need?
    println!("MetUM memory footprint vs EC2's 20 GB nodes:");
    for np in [8usize, 16, 24, 32, 64] {
        let per_rank = w.memory_per_rank_bytes(np);
        match ec2.place(
            np,
            Strategy::BlockMemoryAware {
                per_rank_bytes: per_rank,
            },
        ) {
            Ok(p) => println!(
                "  np={np:>2}: {:.2} GB/rank -> {} nodes",
                per_rank as f64 / 1e9,
                p.nodes_used()
            ),
            Err(e) => println!("  np={np:>2}: cannot place ({e})"),
        }
    }
    println!();

    let mut table = Table::new(
        "MetUM warmed time on EC2: packed (memory-aware block) vs spread over 4 nodes",
        vec![
            "np",
            "packed_s",
            "packed_nodes",
            "spread4_s",
            "speedup",
            "%comm_packed",
        ],
    );
    for np in [16usize, 32, 64] {
        let (packed_res, packed_rep) = cloudsim::Experiment::new(&w, &ec2, np)
            .strategy(Strategy::BlockMemoryAware {
                per_rank_bytes: w.memory_per_rank_bytes(np),
            })
            .run_min()
            .expect("packed run");
        let (_, spread_rep) = cloudsim::Experiment::new(&w, &ec2, np)
            .strategy(Strategy::Spread { nodes: 4 })
            .run_min()
            .expect("spread run");
        let packed = warmed_secs(&packed_rep);
        let spread = warmed_secs(&spread_rep);
        table.row(vec![
            np.to_string(),
            fmt_secs(packed),
            packed_res.placement.nodes_used().to_string(),
            fmt_secs(spread),
            fmt_ratio(packed / spread),
            fmt_pct(packed_res.comm_pct()),
        ]);
    }
    table.note("paper: at 32 cores, 4 nodes vs 2 is 'almost twice as fast' — HyperThread");
    table.note("sharing halves per-rank throughput and the win is uniform across sections");
    println!("{}", table.to_text());

    // Per-section view at 32 ranks, packed: where does the time go?
    let (_, rep) = cloudsim::Experiment::new(&w, &ec2, 32)
        .strategy(Strategy::BlockMemoryAware {
            per_rank_bytes: w.memory_per_rank_bytes(32),
        })
        .run_min()
        .expect("profiled run");
    println!("{}", rep.to_text());
}
