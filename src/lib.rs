//! `hpc-cloud-study` — umbrella crate for the reproduction of
//! *"Scientific Application Performance on HPC, Private and Public Cloud
//! Resources"* (Strazdins, Cai, Atif, Antony; 2012).
//!
//! Everything lives in the [`cloudsim`] facade; this crate exists to host
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See the repository README for the guided tour.

pub use cloudsim::*;
