//! Scheduler-subsystem invariants: the EASY guarantee under randomized
//! job mixes (on both scheduling engines), slot-set vs legacy-free-node
//! equivalence, the naive-backfill head-delay regression, the contended
//! ARRIVE-F rerun, slot-set capability semantics, fragmentation error
//! surfacing, engine-vs-scheduler contention agreement, and golden digests
//! of the schedsweep and slot-capabilities figures.

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    lublin_mix, simulate_burst, simulate_site, BurstPolicy, Discipline, NodePool, PlacementPolicy,
    SchedEngine, SchedError, SchedJob, SiteConfig,
};
use cloudsim::{
    contended_mix, contended_sites, figures, presets, Capacities, ReproConfig, DEFAULT_SEED,
};

const EPS: f64 = 1e-6;

fn site(
    cluster: &cloudsim::sim_platform::ClusterSpec,
    nodes: usize,
    discipline: Discipline,
    placement: PlacementPolicy,
) -> SiteConfig {
    SiteConfig::new(
        NodePool::partition_of(cluster, nodes),
        placement,
        discipline,
        ContentionParams::for_fabric(&cluster.topology.inter),
    )
}

/// Randomized sweep of the EASY invariant: across seeded Lublin mixes,
/// loads, placements, platforms — and both scheduling engines — neither
/// EASY nor conservative backfilling ever starts a job later than the
/// reservation it was quoted when it first blocked at the head of the
/// queue.
#[test]
fn easy_invariant_holds_across_seeded_mixes() {
    let disciplines = [Discipline::Easy, Discipline::Conservative];
    let placements = [
        PlacementPolicy::Packed,
        PlacementPolicy::Scattered,
        PlacementPolicy::RackAware,
    ];
    let engines = [SchedEngine::SlotSet, SchedEngine::LegacyFreeNode];
    for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
        for seed in 0..12u64 {
            let load = 0.6 + 0.25 * (seed % 5) as f64;
            let jobs = lublin_mix(60, 16, load, 0xEA51_0000 + seed);
            for d in disciplines {
                for p in placements {
                    for e in engines {
                        let cfg = site(&cluster, 16, d, p).with_engine(e);
                        let res = simulate_site(&jobs, &cfg).unwrap();
                        assert_eq!(
                            res.head_delay_violations,
                            0,
                            "{} {} {} {} seed {seed}: reservation broken",
                            cluster.name,
                            d.name(),
                            p.name(),
                            e.name()
                        );
                        // Cross-check the counter against the raw data:
                        // every started job with a recorded reservation
                        // started at or before it.
                        for &(job, promised) in &res.reservations {
                            let o = &res.outcomes[job];
                            if o.start.is_finite() {
                                assert!(
                                    o.start <= promised + EPS,
                                    "{} {} {} {} seed {seed}: job {job} started {} > promised {}",
                                    cluster.name,
                                    d.name(),
                                    p.name(),
                                    e.name(),
                                    o.start,
                                    promised
                                );
                            }
                        }
                        // Conservation: every job has an outcome.
                        assert_eq!(res.outcomes.len(), jobs.len());
                    }
                }
            }
        }
    }
}

/// The slot-set engine is a drop-in replacement: across every discipline,
/// placement, platform and a spread of seeds, its schedules are
/// bit-identical to the legacy free-node engine's (starts, ends, node
/// counts, reservations and head-delay counters).
#[test]
fn slot_set_engine_is_bit_identical_to_legacy() {
    let disciplines = [
        Discipline::Fcfs,
        Discipline::Easy,
        Discipline::Conservative,
        Discipline::NaiveBackfill,
    ];
    let placements = [
        PlacementPolicy::Packed,
        PlacementPolicy::Scattered,
        PlacementPolicy::RackAware,
    ];
    for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
        for seed in [3u64, 4, 5] {
            let load = 0.8 + 0.3 * (seed % 3) as f64;
            let jobs = lublin_mix(70, 16, load, 0x51_0750 + seed);
            for d in disciplines {
                for p in placements {
                    let slot = simulate_site(&jobs, &site(&cluster, 16, d, p)).unwrap();
                    let legacy = simulate_site(
                        &jobs,
                        &site(&cluster, 16, d, p).with_engine(SchedEngine::LegacyFreeNode),
                    )
                    .unwrap();
                    let ctx = format!("{} {} {} seed {seed}", cluster.name, d.name(), p.name());
                    assert_eq!(
                        slot.head_delay_violations, legacy.head_delay_violations,
                        "{ctx}"
                    );
                    assert_eq!(slot.reservations, legacy.reservations, "{ctx}");
                    for (a, b) in slot.outcomes.iter().zip(&legacy.outcomes) {
                        assert_eq!(a.start, b.start, "{ctx} job {}", a.id);
                        assert_eq!(a.end, b.end, "{ctx} job {}", a.id);
                        assert_eq!(a.nodes, b.nodes, "{ctx} job {}", a.id);
                        assert_eq!(a.completed, b.completed, "{ctx} job {}", a.id);
                    }
                }
            }
        }
    }
}

/// The historical scheduler bug, pinned as a regression: checking a
/// backfill candidate against *current* free nodes only (ignoring the
/// head's reservation) lets a long narrow job delay a wide queue head.
/// `NaiveBackfill` keeps that rule; EASY and conservative must not trip.
#[test]
fn naive_backfill_delays_the_head_easy_does_not() {
    // 8-node pool. J0 holds 6 nodes for 100 s. J1 (head) needs all 8.
    // J2 (2 nodes, 150 s) fits the 2 free nodes *now* but overlaps the
    // head's reservation at t=100. Tight walltimes (== runtime; there is
    // no contention here) so the reservation sits exactly at t=100.
    let jobs: Vec<SchedJob> = [(0, 6, 0.0, 100.0), (1, 8, 1.0, 50.0), (2, 2, 2.0, 150.0)]
        .into_iter()
        .map(|(id, nodes, submit, runtime)| {
            let mut j = SchedJob::new(id, nodes, submit, runtime, 0.0);
            j.walltime = runtime;
            j
        })
        .collect();
    let cluster = presets::dcc();
    let naive = simulate_site(
        &jobs,
        &site(
            &cluster,
            8,
            Discipline::NaiveBackfill,
            PlacementPolicy::Packed,
        ),
    )
    .unwrap();
    assert!(
        naive.head_delay_violations >= 1,
        "the naive rule must trip the head-delay detector"
    );
    assert!(naive.outcomes[1].start > 100.0 + EPS);
    for d in [Discipline::Easy, Discipline::Conservative] {
        let ok = simulate_site(&jobs, &site(&cluster, 8, d, PlacementPolicy::Packed)).unwrap();
        assert_eq!(ok.head_delay_violations, 0, "{}", d.name());
        assert!(
            ok.outcomes[1].start <= 100.0 + EPS,
            "{}: head must start the moment J0 releases",
            d.name()
        );
    }
}

/// The ARRIVE-F rerun on the real scheduler (EASY + rack-aware +
/// contention) must reproduce the paper-scale result: cloud bursting cuts
/// mean waits by at least 25% once the home partition saturates.
#[test]
fn arrive_f_rerun_improves_mean_wait_by_25_percent_under_contention() {
    let caps = Capacities::default();
    let sites = contended_sites(caps);
    for load in [1.3, 1.6] {
        let jobs = contended_mix(120, load, 11);
        let hpc = simulate_burst(&jobs, &sites, BurstPolicy::HpcOnly, None, None).unwrap();
        let burst = simulate_burst(
            &jobs,
            &sites,
            BurstPolicy::CloudBurst { threshold: 0.55 },
            None,
            None,
        )
        .unwrap();
        assert_eq!(hpc.head_delay_violations, 0);
        assert_eq!(burst.head_delay_violations, 0);
        let improvement = 1.0 - burst.mean_wait / hpc.mean_wait;
        assert!(
            improvement >= 0.25,
            "load {load}: bursting improved mean wait by only {:.1}% ({:.0}s -> {:.0}s)",
            100.0 * improvement,
            hpc.mean_wait,
            burst.mean_wait
        );
        // Bit-for-bit deterministic.
        let again = simulate_burst(
            &jobs,
            &sites,
            BurstPolicy::CloudBurst { threshold: 0.55 },
            None,
            None,
        )
        .unwrap();
        assert_eq!(burst.mean_wait, again.mean_wait);
        assert_eq!(burst.total_cost, again.total_cost);
    }
}

/// The MPI engine and the scheduler use the same contention model: running
/// a job under an engine `Background` load inflates elapsed time by at
/// most the fabric multiplier, and a communication-free job not at all.
#[test]
fn engine_background_agrees_with_scheduler_contention_model() {
    use cloudsim::prelude::*;
    use cloudsim::sim_mpi::Background;

    let cluster = presets::dcc();
    let bg = Background::on_cluster(&cluster, 3.0);
    let factor = bg.factor();
    assert!(factor > 1.0);

    // Comm-heavy job spanning nodes (dcc packs 8 ranks per node, so 16
    // ranks guarantees inter-node traffic): inflation lands strictly
    // between 1 and the factor.
    let mut comm = JobSpec::from_programs(
        "comm",
        (0..16)
            .map(|_| {
                (0..32)
                    .flat_map(|_| {
                        vec![
                            Op::Compute {
                                flops: 1e6,
                                bytes: 1e5,
                            },
                            Op::Coll(CollOp::Allreduce { bytes: 1 << 16 }),
                        ]
                    })
                    .collect()
            })
            .collect(),
        vec![],
    );
    let base = run_job(&mut comm, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
    let cfg = SimConfig {
        background: Some(bg),
        ..Default::default()
    };
    let loaded = run_job(&mut comm, &cluster, &cfg, &mut NullSink).unwrap();
    let ratio = loaded.elapsed_secs() / base.elapsed_secs();
    assert!(
        ratio > 1.0 && ratio <= factor + EPS,
        "comm inflation {ratio:.3} must lie in (1, {factor:.3}]"
    );

    // Compute-only job: background load is invisible.
    let mut cpu = JobSpec::from_programs(
        "cpu",
        (0..4)
            .map(|_| {
                vec![Op::Compute {
                    flops: 1e8,
                    bytes: 1e6,
                }]
            })
            .collect(),
        vec![],
    );
    let a = run_job(&mut cpu, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
    let b = run_job(&mut cpu, &cluster, &cfg, &mut NullSink).unwrap();
    assert_eq!(a.elapsed, b.elapsed, "compute-only jobs must not inflate");
}

/// End-to-end semantics of the slot-set capabilities on the shared
/// scenario: the advance reservation starts exactly on time, project 0
/// never holds more nodes than its quota, dependents start only after
/// their dependencies depart, and EASY keeps its guarantee throughout.
#[test]
fn slot_capabilities_scenario_semantics() {
    let cluster = presets::vayu();
    let jobs = figures::slot_capabilities_jobs(DEFAULT_SEED);
    let cfg = figures::slot_capabilities_site(&cluster);
    let res = simulate_site(&jobs, &cfg).unwrap();
    assert_eq!(res.head_delay_violations, 0);
    assert_eq!(res.outcomes.len(), jobs.len());

    // Advance reservation: job 36 starts at exactly t=2500.
    let resv = &res.outcomes[36];
    assert!(
        (resv.start - 2500.0).abs() < EPS,
        "reservation started at {}",
        resv.start
    );
    assert!(resv.completed);

    // Quota: project 0 holds at most 8 nodes at any instant. Sweep the
    // start/end events of its jobs.
    let mut events: Vec<(f64, i64)> = Vec::new();
    for (j, o) in jobs.iter().zip(&res.outcomes) {
        if j.project == Some(0) && o.start.is_finite() {
            events.push((o.start, o.nodes as i64));
            events.push((o.end, -(o.nodes as i64)));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut held = 0i64;
    for (t, delta) in events {
        held += delta;
        assert!(held <= 8, "project 0 held {held} nodes at t={t}");
    }

    // Dependencies: a dependent starts no earlier than every dep departs.
    for (job, deps) in [(12usize, vec![6usize]), (24, vec![12, 18])] {
        for dep in deps {
            assert!(
                res.outcomes[job].start >= res.outcomes[dep].end - EPS,
                "job {job} started {} before dep {dep} ended {}",
                res.outcomes[job].start,
                res.outcomes[dep].end
            );
        }
    }

    // Moldable jobs committed to one of their declared shapes.
    for &id in &[4usize, 13, 22, 31] {
        let picked = res.outcomes[id].nodes;
        assert!(
            jobs[id].shapes.iter().any(|s| s.nodes == picked),
            "job {id} ran on {picked} nodes, not a declared shape"
        );
    }
}

/// Fragmentation under the rack-strict policy: the legacy engine checks
/// raw counts only and surfaces a typed error when the allocation then
/// fails; the slot-set engine sees infeasibility up front and simply makes
/// the job wait for a single-rack hole.
#[test]
fn rack_strict_fragmentation_errors_on_legacy_waits_on_slot_set() {
    // 8 nodes in racks of 4. Two 2-node jobs land in different racks
    // (idle-rack preference), leaving [2,3] and [6,7] free: raw capacity
    // admits a 3-node job, no single rack does.
    let mk = |id, nodes, submit, runtime: f64| {
        let mut j = SchedJob::new(id, nodes, submit, runtime, 0.0);
        j.walltime = runtime;
        j
    };
    let jobs = vec![
        mk(0, 2, 0.0, 100.0),
        mk(1, 2, 0.0, 300.0),
        mk(2, 3, 1.0, 10.0),
    ];
    let cfg = SiteConfig::new(
        NodePool::new(8, 4),
        PlacementPolicy::RackStrict,
        Discipline::Fcfs,
        ContentionParams::NONE,
    );
    let legacy = simulate_site(&jobs, &cfg.clone().with_engine(SchedEngine::LegacyFreeNode));
    assert!(
        matches!(
            legacy,
            Err(SchedError::PlacementUnsatisfiable {
                need: 3,
                policy: "rack-strict",
                ..
            })
        ),
        "legacy must surface the fragmentation as a typed error: {legacy:?}"
    );
    let slot = simulate_site(&jobs, &cfg).unwrap();
    // Job 0 frees rack 0 at t=100; job 2 starts there.
    assert!(
        (slot.outcomes[2].start - 100.0).abs() < EPS,
        "slot engine should wait for the hole: {:?}",
        slot.outcomes[2]
    );
    assert!(slot.outcomes.iter().all(|o| o.completed));
}

// ---------------------------------------------------------------------------
// Golden digests of the schedsweep and slot-capabilities figures: the
// scheduler is pure DES (no engine runs), so its output is cheap to pin
// bit-for-bit across seeds.
// Regenerate after an *intentional* semantic change with:
//     UPDATE_GOLDEN=1 cargo test --test sched_invariants golden -- --nocapture
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = "tests/golden_sched.txt";

/// FNV-1a, 64-bit — same digest as `tests/determinism.rs`.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn golden_schedsweep_digests_are_stable() {
    let mut digests: Vec<(String, u64)> = [DEFAULT_SEED, 1, 2]
        .iter()
        .map(|&seed| {
            let t = figures::schedsweep(&ReproConfig::quick().with_seed(seed));
            (
                format!("schedsweep/seed{seed:#x}"),
                fnv(t.to_text().as_bytes()),
            )
        })
        .collect();
    digests.extend([DEFAULT_SEED, 1, 2].iter().map(|&seed| {
        let t = figures::slot_capabilities(&ReproConfig::quick().with_seed(seed));
        (
            format!("slotsched/seed{seed:#x}"),
            fnv(t.to_text().as_bytes()),
        )
    }));
    digests.extend([DEFAULT_SEED, 1, 2].iter().map(|&seed| {
        let t = figures::faultsched(&ReproConfig::quick().with_seed(seed));
        (
            format!("faultsched/seed{seed:#x}"),
            fnv(t.to_text().as_bytes()),
        )
    }));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut s = String::from("# Golden schedsweep text digests.\n# label\tdigest\n");
        for (label, d) in &digests {
            s.push_str(&format!("{label}\t{d:016x}\n"));
        }
        std::fs::write(GOLDEN_PATH, s).unwrap();
        eprintln!("golden: wrote {} entries to {GOLDEN_PATH}", digests.len());
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_sched.txt missing — run with UPDATE_GOLDEN=1 to record");
    let mut want = std::collections::BTreeMap::new();
    for line in committed.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut it = line.split('\t');
        let label = it.next().unwrap().to_string();
        let d = u64::from_str_radix(it.next().unwrap(), 16).unwrap();
        want.insert(label, d);
    }
    assert_eq!(want.len(), digests.len(), "golden entry count drifted");
    for (label, d) in &digests {
        let w = want
            .get(label)
            .unwrap_or_else(|| panic!("no golden entry for {label}"));
        assert_eq!(d, w, "{label}: schedsweep output changed");
    }
}
