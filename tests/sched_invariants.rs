//! Scheduler-subsystem invariants: the EASY guarantee under randomized
//! job mixes, the naive-backfill head-delay regression, the contended
//! ARRIVE-F rerun, engine-vs-scheduler contention agreement, and golden
//! digests of the schedsweep figure.

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    lublin_mix, simulate_burst, simulate_site, BurstPolicy, Discipline, NodePool, PlacementPolicy,
    SchedJob, SiteConfig,
};
use cloudsim::{
    contended_mix, contended_sites, figures, presets, Capacities, ReproConfig, DEFAULT_SEED,
};

const EPS: f64 = 1e-6;

fn site(
    cluster: &cloudsim::sim_platform::ClusterSpec,
    nodes: usize,
    discipline: Discipline,
    placement: PlacementPolicy,
) -> SiteConfig {
    SiteConfig {
        pool: NodePool::partition_of(cluster, nodes),
        placement,
        discipline,
        contention: ContentionParams::for_fabric(&cluster.topology.inter),
    }
}

/// Randomized sweep of the EASY invariant: across seeded Lublin mixes,
/// loads, placements and platforms, neither EASY nor conservative
/// backfilling ever starts a job later than the reservation it was quoted
/// when it first blocked at the head of the queue.
#[test]
fn easy_invariant_holds_across_seeded_mixes() {
    let disciplines = [Discipline::Easy, Discipline::Conservative];
    let placements = [
        PlacementPolicy::Packed,
        PlacementPolicy::Scattered,
        PlacementPolicy::RackAware,
    ];
    for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
        for seed in 0..12u64 {
            let load = 0.6 + 0.25 * (seed % 5) as f64;
            let jobs = lublin_mix(60, 16, load, 0xEA51_0000 + seed);
            for d in disciplines {
                for p in placements {
                    let res = simulate_site(&jobs, &site(&cluster, 16, d, p));
                    assert_eq!(
                        res.head_delay_violations,
                        0,
                        "{} {} {} seed {seed}: reservation broken",
                        cluster.name,
                        d.name(),
                        p.name()
                    );
                    // Cross-check the counter against the raw data: every
                    // started job with a recorded reservation started at
                    // or before it.
                    for &(job, promised) in &res.reservations {
                        let o = &res.outcomes[job];
                        if o.start.is_finite() {
                            assert!(
                                o.start <= promised + EPS,
                                "{} {} {} seed {seed}: job {job} started {} > promised {}",
                                cluster.name,
                                d.name(),
                                p.name(),
                                o.start,
                                promised
                            );
                        }
                    }
                    // Conservation: every job has an outcome.
                    assert_eq!(res.outcomes.len(), jobs.len());
                }
            }
        }
    }
}

/// The historical scheduler bug, pinned as a regression: checking a
/// backfill candidate against *current* free nodes only (ignoring the
/// head's reservation) lets a long narrow job delay a wide queue head.
/// `NaiveBackfill` keeps that rule; EASY and conservative must not trip.
#[test]
fn naive_backfill_delays_the_head_easy_does_not() {
    // 8-node pool. J0 holds 6 nodes for 100 s. J1 (head) needs all 8.
    // J2 (2 nodes, 150 s) fits the 2 free nodes *now* but overlaps the
    // head's reservation at t=100. Tight walltimes (== runtime; there is
    // no contention here) so the reservation sits exactly at t=100.
    let jobs: Vec<SchedJob> = [(0, 6, 0.0, 100.0), (1, 8, 1.0, 50.0), (2, 2, 2.0, 150.0)]
        .into_iter()
        .map(|(id, nodes, submit, runtime)| {
            let mut j = SchedJob::new(id, nodes, submit, runtime, 0.0);
            j.walltime = runtime;
            j
        })
        .collect();
    let cluster = presets::dcc();
    let naive = simulate_site(
        &jobs,
        &site(
            &cluster,
            8,
            Discipline::NaiveBackfill,
            PlacementPolicy::Packed,
        ),
    );
    assert!(
        naive.head_delay_violations >= 1,
        "the naive rule must trip the head-delay detector"
    );
    assert!(naive.outcomes[1].start > 100.0 + EPS);
    for d in [Discipline::Easy, Discipline::Conservative] {
        let ok = simulate_site(&jobs, &site(&cluster, 8, d, PlacementPolicy::Packed));
        assert_eq!(ok.head_delay_violations, 0, "{}", d.name());
        assert!(
            ok.outcomes[1].start <= 100.0 + EPS,
            "{}: head must start the moment J0 releases",
            d.name()
        );
    }
}

/// The ARRIVE-F rerun on the real scheduler (EASY + rack-aware +
/// contention) must reproduce the paper-scale result: cloud bursting cuts
/// mean waits by at least 25% once the home partition saturates.
#[test]
fn arrive_f_rerun_improves_mean_wait_by_25_percent_under_contention() {
    let caps = Capacities::default();
    let sites = contended_sites(caps);
    for load in [1.3, 1.6] {
        let jobs = contended_mix(120, load, 11);
        let hpc = simulate_burst(&jobs, &sites, BurstPolicy::HpcOnly, None, None);
        let burst = simulate_burst(
            &jobs,
            &sites,
            BurstPolicy::CloudBurst { threshold: 0.55 },
            None,
            None,
        );
        assert_eq!(hpc.head_delay_violations, 0);
        assert_eq!(burst.head_delay_violations, 0);
        let improvement = 1.0 - burst.mean_wait / hpc.mean_wait;
        assert!(
            improvement >= 0.25,
            "load {load}: bursting improved mean wait by only {:.1}% ({:.0}s -> {:.0}s)",
            100.0 * improvement,
            hpc.mean_wait,
            burst.mean_wait
        );
        // Bit-for-bit deterministic.
        let again = simulate_burst(
            &jobs,
            &sites,
            BurstPolicy::CloudBurst { threshold: 0.55 },
            None,
            None,
        );
        assert_eq!(burst.mean_wait, again.mean_wait);
        assert_eq!(burst.total_cost, again.total_cost);
    }
}

/// The MPI engine and the scheduler use the same contention model: running
/// a job under an engine `Background` load inflates elapsed time by at
/// most the fabric multiplier, and a communication-free job not at all.
#[test]
fn engine_background_agrees_with_scheduler_contention_model() {
    use cloudsim::prelude::*;
    use cloudsim::sim_mpi::Background;

    let cluster = presets::dcc();
    let bg = Background::on_cluster(&cluster, 3.0);
    let factor = bg.factor();
    assert!(factor > 1.0);

    // Comm-heavy job spanning nodes (dcc packs 8 ranks per node, so 16
    // ranks guarantees inter-node traffic): inflation lands strictly
    // between 1 and the factor.
    let mut comm = JobSpec::from_programs(
        "comm",
        (0..16)
            .map(|_| {
                (0..32)
                    .flat_map(|_| {
                        vec![
                            Op::Compute {
                                flops: 1e6,
                                bytes: 1e5,
                            },
                            Op::Coll(CollOp::Allreduce { bytes: 1 << 16 }),
                        ]
                    })
                    .collect()
            })
            .collect(),
        vec![],
    );
    let base = run_job(&mut comm, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
    let cfg = SimConfig {
        background: Some(bg),
        ..Default::default()
    };
    let loaded = run_job(&mut comm, &cluster, &cfg, &mut NullSink).unwrap();
    let ratio = loaded.elapsed_secs() / base.elapsed_secs();
    assert!(
        ratio > 1.0 && ratio <= factor + EPS,
        "comm inflation {ratio:.3} must lie in (1, {factor:.3}]"
    );

    // Compute-only job: background load is invisible.
    let mut cpu = JobSpec::from_programs(
        "cpu",
        (0..4)
            .map(|_| {
                vec![Op::Compute {
                    flops: 1e8,
                    bytes: 1e6,
                }]
            })
            .collect(),
        vec![],
    );
    let a = run_job(&mut cpu, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
    let b = run_job(&mut cpu, &cluster, &cfg, &mut NullSink).unwrap();
    assert_eq!(a.elapsed, b.elapsed, "compute-only jobs must not inflate");
}

// ---------------------------------------------------------------------------
// Golden digests of the schedsweep figure: the scheduler is pure DES (no
// engine runs), so its output is cheap to pin bit-for-bit across seeds.
// Regenerate after an *intentional* semantic change with:
//     UPDATE_GOLDEN=1 cargo test --test sched_invariants golden -- --nocapture
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = "tests/golden_sched.txt";

/// FNV-1a, 64-bit — same digest as `tests/determinism.rs`.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn golden_schedsweep_digests_are_stable() {
    let digests: Vec<(String, u64)> = [DEFAULT_SEED, 1, 2]
        .iter()
        .map(|&seed| {
            let t = figures::schedsweep(&ReproConfig::quick().with_seed(seed));
            (
                format!("schedsweep/seed{seed:#x}"),
                fnv(t.to_text().as_bytes()),
            )
        })
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut s = String::from("# Golden schedsweep text digests.\n# label\tdigest\n");
        for (label, d) in &digests {
            s.push_str(&format!("{label}\t{d:016x}\n"));
        }
        std::fs::write(GOLDEN_PATH, s).unwrap();
        eprintln!("golden: wrote {} entries to {GOLDEN_PATH}", digests.len());
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_sched.txt missing — run with UPDATE_GOLDEN=1 to record");
    let mut want = std::collections::BTreeMap::new();
    for line in committed.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut it = line.split('\t');
        let label = it.next().unwrap().to_string();
        let d = u64::from_str_radix(it.next().unwrap(), 16).unwrap();
        want.insert(label, d);
    }
    assert_eq!(want.len(), digests.len(), "golden entry count drifted");
    for (label, d) in &digests {
        let w = want
            .get(label)
            .unwrap_or_else(|| panic!("no golden entry for {label}"));
        assert_eq!(d, w, "{label}: schedsweep output changed");
    }
}
