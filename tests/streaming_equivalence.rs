//! Streamed-vs-materialized equivalence: every workload builder now emits
//! lazy [`OpSource::Streamed`] programs, and this suite proves the refactor
//! changed *where ops live*, not *what the engine sees*. Each workload is
//! built twice — once streamed (the default) and once as a materialized
//! twin drained from the same generators — and both are run on the same
//! platform with the same seed. Results must be bit-identical: elapsed
//! time, op counts and every per-rank ledger.
//!
//! DCC is the comparison platform on purpose: it exercises jitter draws,
//! rendezvous transfers and multi-node routing, so any divergence in op
//! delivery order would show up in the clock.

use cloudsim::prelude::*;
use cloudsim::sim_mpi::JobSpec;
use cloudsim::workloads::osu::{OsuBandwidth, OsuCollective, OsuLatency};

/// Run the streamed job and its materialized twin; assert bit equality.
fn assert_equivalent(label: &str, mut streamed: JobSpec, np: usize) {
    assert_eq!(streamed.np(), np, "{label}");
    assert!(
        streamed.is_fully_streamed(),
        "{label}: builders must default to streaming"
    );
    let mut twin = JobSpec::from_programs(
        streamed.meta.name.clone(),
        streamed.materialized_copy(),
        streamed.meta.section_names.clone(),
    );
    assert!(!twin.is_fully_streamed());
    let c = presets::dcc();
    let cfg = SimConfig::default();
    let a = run_job(&mut streamed, &c, &cfg, &mut NullSink).unwrap();
    let b = run_job(&mut twin, &c, &cfg, &mut NullSink).unwrap();
    assert_eq!(a.elapsed, b.elapsed, "{label}: elapsed");
    assert_eq!(a.ops_executed, b.ops_executed, "{label}: op count");
    for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
        assert_eq!(x, y, "{label}: rank {r} ledger");
    }
}

#[test]
fn osu_benchmarks_stream_equivalently() {
    for bytes in [8usize, 1 << 20] {
        assert_equivalent("osu_latency", OsuLatency { bytes }.build(2), 2);
        assert_equivalent("osu_bw", OsuBandwidth { bytes }.build(2), 2);
    }
    for np in [8usize, 32] {
        assert_equivalent("osu_allreduce", OsuCollective::allreduce(4).build(np), np);
    }
}

#[test]
fn npb_kernels_stream_equivalently() {
    // Two rank counts per kernel, respecting each kernel's decomposition
    // constraints (BT/SP square, CG power of two).
    for k in Kernel::all() {
        let sweep = k.paper_np_sweep();
        let nps = [sweep[1], *sweep.last().unwrap()];
        for np in nps {
            let w = Npb::new(k, Class::S);
            assert_equivalent(&w.name(), w.build(np), np);
        }
    }
}

#[test]
fn applications_stream_equivalently() {
    for np in [8usize, 16] {
        let m = MetUm { timesteps: 2 };
        assert_equivalent(&m.name(), m.build(np), np);
        let ch = Chaste {
            timesteps: 2,
            cg_iters: 5,
        };
        assert_equivalent(&ch.name(), ch.build(np), np);
    }
}

/// The equivalence survives fault injection: stalls, retries and restarts
/// depend only on the op stream and the seed, not on whether the stream is
/// lazy, and `Program::rewind`-driven restarts replay streamed and
/// materialized programs identically.
#[test]
fn faulty_runs_stream_equivalently() {
    use cloudsim::sim_faults::FaultSpec;
    let w = Npb::new(Kernel::Cg, Class::S);
    let np = 16;
    let mut streamed = w.build(np);
    let mut twin = JobSpec::from_programs(
        streamed.meta.name.clone(),
        streamed.materialized_copy(),
        streamed.meta.section_names.clone(),
    );
    let c = presets::ec2();
    let preset = FaultSpec::preset_for(&c);
    // Rates high enough that a preemption is certain to land inside even
    // this short class-S run and force a restart.
    let spec = FaultSpec {
        model: preset.model.clone().with_rates_scaled(3600.0 * 500.0),
        horizon_secs: 30.0,
        ..preset
    };
    let cfg = SimConfig {
        faults: Some(spec),
        ..SimConfig::default()
    };
    let a = run_job(&mut streamed, &c, &cfg, &mut NullSink).unwrap();
    let b = run_job(&mut twin, &c, &cfg, &mut NullSink).unwrap();
    assert!(a.restarts > 0, "fault rate should force a restart");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.ops_executed, b.ops_executed);
    for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
        assert_eq!(x, y, "rank {r} ledger");
    }
}

/// Large-np smoke: at 1024 ranks a materialized CG trace would hold millions
/// of ops; the streamed path completes with only one block per rank
/// resident. Op counts are checked by streaming (`total_ops`), never by
/// building a full trace.
#[test]
fn cg_streams_at_np_1024() {
    let w = Npb::new(Kernel::Cg, Class::S);
    let mut job = w.build(1024);
    assert!(job.is_fully_streamed());
    let total = job.total_ops();
    assert!(
        total > 1_000_000,
        "expected a trace too big to want: {total}"
    );
    let r = run_job(
        &mut job,
        &presets::vayu(),
        &SimConfig::default(),
        &mut NullSink,
    )
    .unwrap();
    assert_eq!(r.ops_executed, total);
    assert_eq!(r.ranks.len(), 1024);
    assert!(r.elapsed_secs() > 0.0);
}
