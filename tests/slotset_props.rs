//! Property tests for the slot-set interval algebra: `ProcSet` operations
//! against a `BTreeSet` model, slot split/merge round trips, and the exact
//! `earliest_fit` scan against brute force. Seeded (no external proptest
//! dependency) — every case is deterministic and shrinks by inspection.

use std::collections::BTreeSet;

use cloudsim::sim_des::DetRng;
use cloudsim::sim_sched::slot::{earliest_fit, EPS};
use cloudsim::sim_sched::{ProcSet, SlotSet};

fn random_set(rng: &mut DetRng, universe: usize, density: f64) -> (ProcSet, BTreeSet<usize>) {
    let mut model = BTreeSet::new();
    for id in 0..universe {
        if rng.uniform() < density {
            model.insert(id);
        }
    }
    let ids: Vec<usize> = model.iter().copied().collect();
    (ProcSet::from_ids(&ids), model)
}

fn assert_matches_model(ps: &ProcSet, model: &BTreeSet<usize>, ctx: &str) {
    assert_eq!(ps.len(), model.len(), "{ctx}: len");
    let got: Vec<usize> = ps.iter().collect();
    let want: Vec<usize> = model.iter().copied().collect();
    assert_eq!(got, want, "{ctx}: contents");
    // Runs must be sorted, disjoint and maximal.
    let runs = ps.runs();
    for w in runs.windows(2) {
        assert!(
            w[0].1 + 1 < w[1].0,
            "{ctx}: runs {:?} and {:?} should have merged",
            w[0],
            w[1]
        );
    }
    for &(lo, hi) in runs {
        assert!(lo <= hi, "{ctx}: inverted run");
    }
}

#[test]
fn procset_ops_agree_with_a_btreeset_model() {
    let mut rng = DetRng::new(0x5107_0001, 0x51075E7);
    for case in 0..200 {
        let universe = 1 + rng.index(96);
        let da = rng.uniform();
        let (a, ma) = random_set(&mut rng, universe, da);
        let db = rng.uniform();
        let (b, mb) = random_set(&mut rng, universe, db);
        let ctx = format!("case {case} universe {universe}");
        assert_matches_model(&a.union(&b), &ma.union(&mb).copied().collect(), &ctx);
        assert_matches_model(
            &a.intersect(&b),
            &ma.intersection(&mb).copied().collect(),
            &ctx,
        );
        assert_matches_model(
            &a.difference(&b),
            &ma.difference(&mb).copied().collect(),
            &ctx,
        );
        for id in 0..universe {
            assert_eq!(a.contains(id), ma.contains(&id), "{ctx}: contains {id}");
        }
        let n = rng.index(ma.len() + 1);
        let taken = a.take(n);
        let want_taken: BTreeSet<usize> = ma.iter().copied().take(n).collect();
        assert_matches_model(&taken, &want_taken, &format!("{ctx}: take {n}"));
    }
}

#[test]
fn window_subtractions_reconstruct_and_merge_restores_one_slot() {
    let mut rng = DetRng::new(0x5107_0002, 0x51075E7);
    for case in 0..60 {
        let nodes = 8 + rng.index(56);
        let mut ss = SlotSet::new(0.0, ProcSet::range(0, nodes - 1));
        // Carve a pile of random windows out of the slot set.
        let mut windows: Vec<(f64, f64, ProcSet)> = Vec::new();
        for _ in 0..(1 + rng.index(12)) {
            let begin = 1000.0 * rng.uniform();
            let end = begin + 1.0 + 500.0 * rng.uniform();
            let density = 0.3 + 0.4 * rng.uniform();
            let (procs, model) = random_set(&mut rng, nodes, density);
            if model.is_empty() {
                continue;
            }
            ss.sub_window(begin, end, &procs);
            windows.push((begin, end, procs));
        }
        // At any probe instant, availability == site minus the union of
        // windows covering that instant.
        for _ in 0..40 {
            let t = 1600.0 * rng.uniform();
            let mut expect = ProcSet::range(0, nodes - 1);
            for (b, e, p) in &windows {
                if t >= *b - EPS && t < *e - EPS {
                    expect = expect.difference(p);
                }
            }
            assert_eq!(
                ss.avail_at(t),
                &expect,
                "case {case}: avail at {t} with {} windows",
                windows.len()
            );
        }
        // Add every window back in a shuffled order: merge must restore a
        // single maximal slot holding the whole site.
        while !windows.is_empty() {
            let i = rng.index(windows.len());
            let (b, e, p) = windows.swap_remove(i);
            ss.add_window(b, e, &p);
        }
        ss.merge();
        assert_eq!(ss.slots().len(), 1, "case {case}: merge left extra slots");
        assert_eq!(ss.slots()[0].avail.len(), nodes, "case {case}");
    }
}

#[test]
fn earliest_fit_agrees_with_brute_force() {
    let mut rng = DetRng::new(0x5107_0003, 0x51075E7);
    for case in 0..200 {
        // A random availability step profile: points (t, level).
        let mut t = 0.0;
        let mut points: Vec<(f64, i64)> = Vec::new();
        let base = rng.index(16) as i64;
        points.push((0.0, base));
        for _ in 0..rng.index(10) {
            t += 1.0 + 100.0 * rng.uniform();
            points.push((t, rng.index(16) as i64));
        }
        let need = 1 + rng.index(16) as i64;
        let dur = 1.0 + 200.0 * rng.uniform();
        let got = earliest_fit(&points, need, dur);
        // Brute force: candidate starts are exactly the profile points;
        // a start fits when every point in [s, s+dur) has level >= need.
        let level_at = |x: f64| {
            points
                .iter()
                .rev()
                .find(|(pt, _)| *pt <= x + EPS)
                .map(|(_, l)| *l)
                .unwrap_or(base)
        };
        let fits = |s: f64| {
            points
                .iter()
                .filter(|(pt, _)| *pt >= s - EPS && *pt < s + dur - EPS)
                .all(|(_, l)| *l >= need)
                && level_at(s) >= need
        };
        let brute = points.iter().map(|(pt, _)| *pt).find(|&s| fits(s));
        assert_eq!(
            got, brute,
            "case {case}: points {points:?} need {need} dur {dur}"
        );
        if let Some(s) = got {
            assert!(fits(s), "case {case}: reported start does not fit");
        }
    }
}
