//! Cross-validation: the analytic formulas the workload models charge to
//! the simulator against the real kernels in the `numerics` crate.

use cloudsim::numerics::{
    cg_iter_flops, cg_solve, ep_rank, ep_serial, fft, fft_flops, Csr, C64, CG_DOTS_PER_ITER,
};
use cloudsim::prelude::*;

/// The CG workload model issues exactly `CG_DOTS_PER_ITER` scalar
/// allreduces per inner iteration — the same count the real CG solver's
/// dot products produce.
#[test]
fn cg_allreduce_count_matches_real_solver() {
    // Real solver on a small SPD system.
    let a = Csr::poisson_2d(20, 20);
    let b = vec![1.0; a.n];
    let mut x = vec![0.0; a.n];
    let stats = cg_solve(&a, &b, &mut x, 1e-10, 500);
    assert_eq!(stats.dot_products, 1 + CG_DOTS_PER_ITER * stats.iterations);

    // Workload model: count the scalar allreduces per rank.
    let w = Npb::new(Kernel::Cg, Class::S);
    let mut job = w.build(4);
    let (_, _, niter) = cloudsim::workloads::npb::cg::dims(Class::S);
    let cgit = cloudsim::workloads::npb::cg::CGIT;
    let small_allreduces = job
        .materialize_rank(0)
        .iter()
        .filter(|op| matches!(op, Op::Coll(CollOp::Allreduce { bytes: 8 })))
        .count();
    assert_eq!(small_allreduces, niter * cgit * CG_DOTS_PER_ITER);
}

/// The real CG flop counter agrees with the per-iteration formula the
/// Chaste/CG models are built on.
#[test]
fn cg_flop_formula_validated_by_execution() {
    let a = Csr::poisson_2d(24, 24);
    let b = vec![1.0; a.n];
    let mut x = vec![0.0; a.n];
    let stats = cg_solve(&a, &b, &mut x, 1e-12, 300);
    let setup = a.spmv_flops() + 4.0 * a.n as f64;
    let predicted = setup + stats.iterations as f64 * cg_iter_flops(a.n, a.nnz());
    let rel = (stats.flops - predicted).abs() / predicted;
    assert!(rel < 1e-9, "relative error {rel}");
}

/// EP's partition invariance is what justifies simulating it as pure
/// compute + one final reduction: every decomposition gives identical
/// results, so communication structure is trivially 3 small allreduces.
#[test]
fn ep_model_matches_real_kernel_structure() {
    // Real kernel: partition invariance.
    let serial = ep_serial(12);
    let mut merged = ep_rank(12, 4, 0);
    for r in 1..4 {
        merged.merge(&ep_rank(12, 4, r));
    }
    assert_eq!(merged.q, serial.q);

    // Model: exactly three trailing allreduces, no other communication.
    let w = Npb::new(Kernel::Ep, Class::S);
    let mut job = w.build(8);
    let comm_ops = job
        .materialize_rank(0)
        .iter()
        .filter(|op| !matches!(op, Op::Compute { .. }))
        .count();
    assert_eq!(comm_ops, 3, "EP must have exactly 3 collectives");
}

/// The FT model's transform work follows the 5 n log2 n law the real FFT
/// obeys: doubling the grid edge scales flops superlinearly but the
/// round-trip still verifies.
#[test]
fn ft_flop_law_and_real_fft() {
    // Real FFT round-trip at two sizes.
    for n in [256usize, 512] {
        let mut d: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        let orig = d.clone();
        fft(&mut d, false);
        fft(&mut d, true);
        for (a, b) in d.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
        }
    }
    // The law: flops(2n)/flops(n) = 2 * log2(2n)/log2(n).
    let r = fft_flops(512) / fft_flops(256);
    assert!((r - 2.0 * 9.0 / 8.0).abs() < 1e-9);
}

/// The IS model's hot-pair factor is justified by the real key
/// distribution: the busiest of `np` buckets carries ~3x the mean load.
#[test]
fn is_hot_pair_factor_justified_by_key_distribution() {
    use cloudsim::numerics::{bucket_counts, generate_keys};
    let np = 16;
    let keys = generate_keys(200_000, 1 << 16, 271828183);
    let counts = bucket_counts(&keys, 1 << 16, np);
    let mean = keys.len() as f64 / np as f64;
    let max = *counts.iter().max().unwrap() as f64;
    let factor = max / mean;
    let model = cloudsim::workloads::npb::is::HOT_PAIR_FACTOR as f64;
    assert!(
        (factor - model).abs() < 1.5,
        "measured hot-bucket factor {factor:.2} vs model {model}"
    );
}

/// The MG model's per-level work weights follow the 8x geometric decay a
/// real V-cycle has, and the real V-cycle converges (so 20 iterations of
/// the class-B benchmark are a sensible workload).
#[test]
fn mg_vcycle_converges_and_weights_decay() {
    use cloudsim::numerics::{residual, v_cycle, Grid3};
    let n = 17;
    let mut f = Grid3::zeros(n);
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                f.data[(i * n + j) * n + k] = 1.0;
            }
        }
    }
    let mut u = Grid3::zeros(n);
    let mut r = Grid3::zeros(n);
    residual(&u, &f, &mut r);
    let r0 = r.norm();
    let mut rn = r0;
    for _ in 0..5 {
        rn = v_cycle(&mut u, &f, 2, 2);
    }
    assert!(rn < 0.02 * r0, "5 V-cycles: {r0} -> {rn}");
}
