//! Integration suite for the `sim-advisor` service layer (ISSUE 10).
//!
//! * cache-on vs cache-off bit-identical verdicts across seeds ×
//!   platforms × kernels;
//! * hash-collision smoke: 10k distinct queries never share a cache slot;
//! * snapshot round-trip byte-identity + typed rejection of snapshots
//!   with a perturbed calibration fingerprint;
//! * golden-diff of the legacy `advise()` output (deprecate-by-delegation
//!   must not move a byte);
//! * fleet determinism across worker counts, warm vs cold.

use cloudsim::prelude::*;
use cloudsim::sim_advisor::{
    AdvisorError, AdvisorService, PlatformId, Query, VerdictCache, WorkloadId,
};
use cloudsim::sim_sweep::SweepOpts;
use cloudsim::{advise, PriceModel};

fn npb(kernel: Kernel, class: Class) -> WorkloadId {
    WorkloadId::Npb { kernel, class }
}

#[test]
fn cache_on_vs_cache_off_bit_identical() {
    let cached = AdvisorService::new();
    let uncached = AdvisorService::new().without_cache();
    for seed in [0x5EED_0000u64, 7, 424242] {
        for platform in PlatformId::ALL {
            for kernel in [Kernel::Cg, Kernel::Mg, Kernel::Ep, Kernel::Is] {
                let q = Query::new(npb(kernel, Class::S), platform, 8).with_seed(seed);
                let miss = cached.evaluate(&q).expect("cached evaluate");
                let hit = cached.evaluate(&q).expect("cached re-evaluate");
                let off = uncached.evaluate(&q).expect("uncached evaluate");
                let direct = cached.evaluate_uncached(&q).expect("direct evaluate");
                for v in [hit, off, direct] {
                    assert_eq!(
                        miss.content_digest(),
                        v.content_digest(),
                        "{kernel:?} {platform:?} seed={seed}"
                    );
                    assert_eq!(miss, v);
                }
            }
        }
    }
    // Every (seed, platform, kernel) combination was one miss + one hit;
    // evaluate_uncached bypasses the cache and touches no counters.
    let s = cached.stats();
    assert_eq!(s.misses, 36);
    assert_eq!(s.hits, 36);
    assert_eq!(s.collisions, 0);
}

#[test]
fn hash_collision_smoke_10k_distinct_slots() {
    // 10k distinct queries: distinct content keys, and a cache big enough
    // to hold them all retrieves every one without aliasing.
    let mut queries = Vec::new();
    'outer: for kernel in [Kernel::Cg, Kernel::Mg, Kernel::Ep, Kernel::Is, Kernel::Ft] {
        for class in [Class::S, Class::W, Class::A, Class::B] {
            for np in [2u32, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
                for platform in PlatformId::ALL {
                    for seed in 0..17u64 {
                        queries.push(Query::new(npb(kernel, class), platform, np).with_seed(seed));
                        if queries.len() == 10_000 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(queries.len(), 10_000);
    let mut keys = std::collections::HashSet::new();
    for q in &queries {
        assert!(keys.insert(q.key().0), "key collision for {q:?}");
    }
    // Populate a cache with synthetic verdicts tagged by index; read back.
    let cache = VerdictCache::new(16, 1024);
    let tag = |i: usize| cloudsim::sim_advisor::Verdict {
        elapsed_secs: i as f64,
        nodes: 1,
        on_demand_cost: 0.0,
        spot_cost: 0.0,
        comm_pct: 0.0,
        io_pct: 0.0,
        collective_frac: 0.0,
        imbalance_pct: 0.0,
        result_digest: i as u64,
    };
    for (i, q) in queries.iter().enumerate() {
        cache.insert(q.key(), *q, tag(i));
    }
    for (i, q) in queries.iter().enumerate() {
        let got = cache.get(q.key(), q).expect("resident entry");
        assert_eq!(got.result_digest, i as u64, "slot aliased for {q:?}");
    }
    let s = cache.stats();
    assert_eq!(s.collisions, 0);
    assert_eq!(s.len, 10_000);
    assert_eq!(s.evictions, 0);
}

#[test]
fn snapshot_round_trip_is_byte_identical() {
    let svc = AdvisorService::new();
    let queries: Vec<Query> = PlatformId::ALL
        .iter()
        .flat_map(|&p| {
            [Kernel::Cg, Kernel::Ep]
                .into_iter()
                .map(move |k| Query::new(npb(k, Class::S), p, 4))
        })
        .collect();
    let originals: Vec<_> = queries
        .iter()
        .map(|q| svc.evaluate(q).expect("evaluate"))
        .collect();

    // save -> load -> re-query is byte-identical.
    let bytes = svc.snapshot_bytes();
    let restored = AdvisorService::new();
    assert_eq!(
        restored.load_snapshot_bytes(&bytes).expect("load"),
        queries.len()
    );
    for (q, orig) in queries.iter().zip(&originals) {
        let v = restored.evaluate(q).expect("warm evaluate");
        assert_eq!(v.content_digest(), orig.content_digest());
    }
    assert_eq!(
        restored.stats().misses,
        0,
        "everything came from the snapshot"
    );

    // A re-serialized snapshot of identical state is the same bytes.
    assert_eq!(restored.snapshot_bytes(), bytes);

    // File round-trip through the save/load API.
    let path = std::env::temp_dir().join(format!(
        "advisor_snap_{}_{}.bin",
        std::process::id(),
        queries.len()
    ));
    svc.save_snapshot(&path).expect("save");
    let from_file = AdvisorService::new();
    assert_eq!(from_file.load_snapshot(&path).expect("load"), queries.len());
    let _ = std::fs::remove_file(&path);
    assert_eq!(from_file.snapshot_bytes(), bytes);
}

#[test]
fn snapshot_with_perturbed_fingerprint_is_rejected_typed() {
    let svc = AdvisorService::new();
    svc.evaluate(&Query::new(npb(Kernel::Ep, Class::S), PlatformId::Vayu, 2))
        .expect("evaluate");
    // Forge a snapshot of the same entries under a flipped fingerprint.
    let fp = cloudsim::sim_advisor::engine_fingerprint();
    let entries = cloudsim::sim_advisor::decode_snapshot(&svc.snapshot_bytes(), fp)
        .expect("own snapshot decodes");
    let forged = cloudsim::sim_advisor::encode_snapshot(fp ^ 1, &entries);
    let fresh = AdvisorService::new();
    match fresh.load_snapshot_bytes(&forged) {
        Err(AdvisorError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, fp);
            assert_eq!(found, fp ^ 1);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // Nothing was admitted.
    assert_eq!(fresh.stats().len, 0);

    // Corrupted bytes are a typed SnapshotCorrupt, also not a panic.
    let mut bent = svc.snapshot_bytes();
    let mid = bent.len() / 2;
    bent[mid] ^= 0x40;
    assert!(matches!(
        fresh.load_snapshot_bytes(&bent),
        Err(AdvisorError::SnapshotCorrupt(_))
    ));
}

#[test]
fn fleet_is_thread_count_invariant_and_warm_equals_cold() {
    let queries: Vec<Query> = (0..60)
        .map(|i| {
            let kernels = [Kernel::Cg, Kernel::Mg, Kernel::Ep, Kernel::Is];
            Query::new(
                npb(kernels[i % 4], Class::S),
                PlatformId::ALL[i % 3],
                [2u32, 4, 8][(i / 12) % 3],
            )
            .with_seed(1000 + (i / 20) as u64)
        })
        .collect();
    let reference = AdvisorService::new()
        .evaluate_fleet(&queries, &SweepOpts::default().with_threads(1))
        .expect("serial fleet");
    for threads in [2usize, 8] {
        let svc = AdvisorService::new();
        let cold = svc
            .evaluate_fleet(&queries, &SweepOpts::default().with_threads(threads))
            .expect("cold fleet");
        let warm = svc
            .evaluate_fleet(&queries, &SweepOpts::default().with_threads(threads))
            .expect("warm fleet");
        assert_eq!(reference.digest, cold.digest, "threads={threads}");
        assert_eq!(reference.digest, warm.digest, "threads={threads} warm");
        assert_eq!(reference.verdicts, cold.verdicts);
    }
}

/// Deprecate-by-delegation: the exact text the pre-service
/// `examples/cloudburst_advisor.rs` printed, regenerated through the
/// delegating `advise()`, must match the committed golden byte for byte.
#[test]
fn legacy_advisor_example_output_is_golden() {
    let mut out = String::new();
    out.push_str("== per-workload advice (class A, 32 ranks) ==\n\n");
    let candidates: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Ep, Class::A)),
        Box::new(Npb::new(Kernel::Mg, Class::A)),
        Box::new(Npb::new(Kernel::Cg, Class::A)),
        Box::new(Npb::new(Kernel::Is, Class::A)),
    ];
    for w in &candidates {
        let rec = advise(w.as_ref(), 32);
        out.push_str(&format!(
            "{}\n",
            rec.to_table(&format!("advice: {} @ 32 ranks", w.name()))
                .to_text()
        ));
    }
    out.push_str("== deadline shopping ==\n\n");
    let w = Npb::new(Kernel::Mg, Class::A);
    let rec = advise(&w, 32);
    for deadline in [0.5f64, 2.0, 20.0] {
        match rec.best_within_deadline(deadline) {
            Some(f) => out.push_str(&format!(
                "deadline {deadline:>5.1}s: run on {:<5} ({:.2}s, ${:.2} on-demand, ${:.2} spot)\n",
                f.platform, f.elapsed_secs, f.on_demand_cost, f.spot_cost
            )),
            None => out.push_str(&format!(
                "deadline {deadline:>5.1}s: no platform meets it\n"
            )),
        }
    }
    out.push_str("\n== what a year of EC2 spot would cost vs the private cloud ==\n\n");
    let ec2 = PriceModel::ec2_2012();
    let dcc = PriceModel::private_cloud();
    let per_run_secs = 2.0 * 3600.0;
    let yearly_spot = ec2.spot_cost(4, per_run_secs) * 365.0;
    let yearly_dcc = dcc.cost(4, per_run_secs) * 365.0;
    out.push_str(&format!(
        "daily 4-node 2h run: EC2 spot ${yearly_spot:.0}/yr vs private cloud ${yearly_dcc:.0}/yr\n"
    ));

    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_advisor.txt"
    ))
    .expect("golden file");
    assert_eq!(out, golden, "delegated advise() moved the legacy output");
}

#[test]
fn near_duplicate_queries_reuse_programs() {
    // "Same job, different platform / seed" rewinds the pooled program;
    // only a rank-count change rebuilds.
    let svc = AdvisorService::new();
    let base = Query::new(npb(Kernel::Mg, Class::S), PlatformId::Vayu, 8);
    for platform in PlatformId::ALL {
        for seed in [1u64, 2] {
            svc.evaluate(&Query { platform, ..base }.with_seed(seed))
                .expect("evaluate");
        }
    }
    let ps = svc.program_stats();
    assert_eq!(ps.built, 1, "six near-duplicates share one program");
    assert_eq!(ps.reused, 5);
    svc.evaluate(&Query { np: 16, ..base }).expect("evaluate");
    assert_eq!(svc.program_stats().built, 2, "+N ranks rebuilds once");
}
