//! Fault-tolerant scheduling invariants: the zero-fault path stays
//! bit-identical to the committed goldens even with a (null) fault feed
//! attached, same-seed fault runs replay bit for bit, and requeued jobs
//! are never starved — every crash-killed job with budget left restarts
//! and finishes within the batch under EASY.

use cloudsim::sim_faults::{FaultModel, RetryPolicy};
use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    lublin_mix, sched_report, simulate_site, CheckpointSpec, Discipline, FaultAction, NodePool,
    PlacementPolicy, RequeuePolicy, SiteConfig, SiteFaults,
};
use cloudsim::{figures, presets, DEFAULT_SEED};

/// FNV-1a, 64-bit — same digest as `tests/sched_invariants.rs`.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fail-stop-heavy model: enough crash windows over a synthetic batch
/// that kills and requeues certainly occur on a 32-node partition.
fn crashy() -> FaultModel {
    FaultModel {
        name: "test-crashy",
        scale: 1.0,
        crash_per_node_hour: 1.0,
        crash_mean_secs: 120.0,
        ..FaultModel::none()
    }
}

/// Attaching a null fault feed must leave the slot-capabilities scenario
/// byte-identical to its committed golden digest: the fault machinery
/// never arms, so report text and outcome bits cannot move.
#[test]
fn null_fault_feed_matches_the_committed_golden() {
    let cluster = presets::vayu();
    let jobs = figures::slot_capabilities_jobs(DEFAULT_SEED);
    let plain_site = figures::slot_capabilities_site(&cluster);
    let nulled = plain_site
        .clone()
        .with_faults(SiteFaults::new(FaultModel::none(), DEFAULT_SEED));
    let plain = simulate_site(&jobs, &plain_site).unwrap();
    let with_null = simulate_site(&jobs, &nulled).unwrap();
    for (a, b) in plain.outcomes.iter().zip(&with_null.outcomes) {
        assert_eq!(a.start.to_bits(), b.start.to_bits());
        assert_eq!(a.end.to_bits(), b.end.to_bits());
    }
    assert_eq!(
        sched_report(cluster.name, &jobs, &plain).to_text(),
        sched_report(cluster.name, &jobs, &with_null).to_text(),
        "a null feed must not change a single report byte"
    );
    // And the table this scenario feeds still matches the committed pin.
    let committed = std::fs::read_to_string("tests/golden_sched.txt").unwrap();
    let want = committed
        .lines()
        .find_map(|l| l.strip_prefix("slotsched/seed0x5eed0000\t"))
        .expect("slotsched golden entry present");
    let t = figures::slot_capabilities(&cloudsim::ReproConfig::quick());
    assert_eq!(
        format!("{:016x}", fnv(t.to_text().as_bytes())),
        want,
        "zero-fault slot-engine schedule drifted from the committed golden"
    );
}

/// Property, across seeds: under EASY with an ample retry budget and
/// checkpointed restarts (each rerun owes strictly less work), a
/// crash-killed job is requeued and finishes — no job is starved out of
/// the batch, every kill is eventually answered by a completion after it,
/// and waits stay bounded by the batch makespan.
#[test]
fn requeued_jobs_are_never_starved_under_easy() {
    for seed in [DEFAULT_SEED, 1, 2, 3, 4] {
        let cluster = presets::dcc();
        let jobs = lublin_mix(40, 32, 1.1, seed);
        let requeue = RequeuePolicy::default()
            .with_retry(RetryPolicy {
                max_retries: 10_000,
                ..Default::default()
            })
            .with_checkpoint(CheckpointSpec {
                interval: 120.0,
                restore_cost: 10.0,
            });
        let cfg = SiteConfig::new(
            NodePool::partition_of(&cluster, 32),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&cluster.topology.inter),
        )
        .with_faults(
            SiteFaults::new(crashy(), seed)
                .with_mttr(300.0)
                .with_requeue(requeue),
        );
        let r = simulate_site(&jobs, &cfg).unwrap();
        assert!(
            r.fault_stats.kills > 0,
            "seed {seed}: model not hot enough to exercise the property"
        );
        // Nobody starves: every job (requeued or not) completes...
        assert!(
            r.outcomes.iter().all(|o| o.completed),
            "seed {seed}: a job never finished: {:?}",
            r.outcomes.iter().find(|o| !o.completed)
        );
        assert!(r.outcomes.iter().any(|o| o.requeues > 0), "seed {seed}");
        // ...every kill is followed by that job's final completion...
        for e in &r.fault_events {
            if e.action == FaultAction::Kill {
                let job = e.job.expect("kills carry a job");
                let o = r.outcomes.iter().find(|o| o.id == job).unwrap();
                assert!(
                    o.end > e.t,
                    "seed {seed}: job {job} killed at {} but last departed at {}",
                    e.t,
                    o.end
                );
            }
        }
        // ...and no wait exceeds the batch makespan (bounded delay).
        for o in &r.outcomes {
            assert!(
                o.wait <= r.makespan + 1e-6,
                "seed {seed}: job {} waited {} s in a {} s batch",
                o.id,
                o.wait,
                r.makespan
            );
        }
    }
}

/// Two runs at the same seed replay the identical fault timeline and
/// schedule; a different seed moves the fault noise.
#[test]
fn fault_runs_replay_bit_identically_per_seed() {
    let cluster = presets::ec2();
    let jobs = lublin_mix(40, 32, 1.1, DEFAULT_SEED);
    let mk = |seed| {
        let cfg = SiteConfig::new(
            NodePool::partition_of(&cluster, 32),
            PlacementPolicy::RackAware,
            Discipline::Conservative,
            ContentionParams::for_fabric(&cluster.topology.inter),
        )
        .with_faults(SiteFaults::new(crashy(), seed).with_mttr(120.0));
        simulate_site(&jobs, &cfg).unwrap()
    };
    let a = mk(7);
    let b = mk(7);
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.fault_stats, b.fault_stats);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.start.to_bits(), y.start.to_bits());
        assert_eq!(x.end.to_bits(), y.end.to_bits());
        assert_eq!(x.requeues, y.requeues);
    }
    let c = mk(8);
    assert_ne!(
        a.fault_events, c.fault_events,
        "different seeds must move the fault noise"
    );
}
