//! Integration tests asserting the paper's headline findings hold in the
//! reproduction, at reduced problem scale.

use cloudsim::prelude::*;
use cloudsim::workloads::metum::warmed_secs;

fn elapsed(w: &dyn Workload, c: &ClusterSpec, np: usize) -> f64 {
    cloudsim::Experiment::new(w, c, np)
        .repeats(1)
        .run_once()
        .expect("run")
        .0
        .elapsed_secs()
}

/// "The key finding here ... the importance of the interconnect and how
/// communication bound applications, especially those which used short
/// messages were at a disadvantage on the two virtualized platforms."
#[test]
fn interconnect_dominates_comm_bound_kernels() {
    let cg = Npb::new(Kernel::Cg, Class::W);
    let vayu = elapsed(&cg, &presets::vayu(), 32);
    let ec2 = elapsed(&cg, &presets::ec2(), 32);
    let dcc = elapsed(&cg, &presets::dcc(), 32);
    assert!(vayu < ec2 && ec2 < dcc, "vayu {vayu} ec2 {ec2} dcc {dcc}");
    // And the gap is large for the short-message kernel.
    assert!(dcc / vayu > 2.0, "DCC/Vayu only {:.2}", dcc / vayu);
}

/// "...scientific applications with minimal communications and I/O make
/// the best fit for cloud deployment" (quoted from the related work the
/// paper corroborates): EP's cloud penalty is tiny, IS's is huge.
#[test]
fn ep_is_cloud_friendly_is_is_not() {
    // Class A so per-rank compute dwarfs fixed jitter costs (class W at 32
    // ranks is only ~0.1 s of work per rank).
    let ep = Npb::new(Kernel::Ep, Class::A);
    let is = Npb::new(Kernel::Is, Class::A);
    let penalty =
        |w: &dyn Workload| elapsed(w, &presets::dcc(), 32) / elapsed(w, &presets::vayu(), 32);
    let ep_penalty = penalty(&ep);
    let is_penalty = penalty(&is);
    // EP's penalty is just the clock + hypervisor ratio (~1.3-1.6);
    // IS pays several times more.
    assert!(ep_penalty < 1.8, "EP penalty {ep_penalty}");
    assert!(
        is_penalty > 2.0 * ep_penalty,
        "IS {is_penalty} vs EP {ep_penalty}"
    );
}

/// "...the need to avoid over-subscription of cores as this affects code
/// scalability": EC2 at 16 ranks on one node (HyperThread sharing) vs the
/// same ranks spread over two nodes.
#[test]
fn hyperthread_oversubscription_hurts() {
    let ep = Npb::new(Kernel::Ep, Class::W);
    let c = presets::ec2();
    let packed = cloudsim::Experiment::new(&ep, &c, 16)
        .repeats(1)
        .run_once()
        .unwrap()
        .0;
    let spread = cloudsim::Experiment::new(&ep, &c, 16)
        .strategy(Strategy::Spread { nodes: 2 })
        .repeats(1)
        .run_once()
        .unwrap()
        .0;
    assert_eq!(packed.placement.nodes_used(), 1);
    assert_eq!(spread.placement.nodes_used(), 2);
    let ratio = packed.elapsed_secs() / spread.elapsed_secs();
    assert!(
        (1.6..2.4).contains(&ratio),
        "HT sharing should roughly halve throughput; ratio {ratio}"
    );
}

/// "...the performance analysis indicated that the underlying filesystem
/// is also important": the same 1.6 GB read is fastest on Lustre, slowest
/// on DCC's NFS.
#[test]
fn filesystem_ordering_matches_table3() {
    let w = MetUm { timesteps: 2 };
    let io = |c: &ClusterSpec, strat: Strategy| {
        cloudsim::Experiment::new(&w, c, 8)
            .strategy(strat)
            .repeats(1)
            .run_once()
            .unwrap()
            .0
            .io_secs_max()
    };
    let vayu = io(&presets::vayu(), Strategy::Block);
    let ec2 = io(
        &presets::ec2(),
        Strategy::BlockMemoryAware {
            per_rank_bytes: w.memory_per_rank_bytes(8),
        },
    );
    let dcc = io(&presets::dcc(), Strategy::Block);
    assert!(vayu < ec2 && ec2 < dcc, "vayu {vayu} ec2 {ec2} dcc {dcc}");
    // Table III magnitudes: ~4.5 / ~9.1 / ~37.8 seconds.
    assert!((3.0..7.0).contains(&vayu), "vayu io {vayu}");
    assert!((7.0..12.0).contains(&ec2), "ec2 io {ec2}");
    assert!((30.0..45.0).contains(&dcc), "dcc io {dcc}");
}

/// MetUM on EC2: memory capacity forces multi-node runs, and spreading
/// over 4 nodes beats packing ("EC2-4 ... always significantly faster").
#[test]
fn metum_ec2_packing_story() {
    let w = MetUm { timesteps: 3 };
    let c = presets::ec2();
    // Cannot run on a single node at any rank count (28 GB > 20 GB).
    let p8 = c
        .place(
            8,
            Strategy::BlockMemoryAware {
                per_rank_bytes: w.memory_per_rank_bytes(8),
            },
        )
        .unwrap();
    assert!(p8.nodes_used() >= 2);
    // At 32 ranks, EC2-4 wins clearly.
    let packed = cloudsim::Experiment::new(&w, &c, 32)
        .strategy(Strategy::BlockMemoryAware {
            per_rank_bytes: w.memory_per_rank_bytes(32),
        })
        .repeats(1)
        .run_once()
        .unwrap();
    let spread = cloudsim::Experiment::new(&w, &c, 32)
        .strategy(Strategy::Spread { nodes: 4 })
        .repeats(1)
        .run_once()
        .unwrap();
    let ratio = warmed_secs(&packed.1) / warmed_secs(&spread.1);
    assert!(ratio > 1.5, "EC2-4 should be near-2x: ratio {ratio}");
}

/// The Chaste KSp section "determines the trends in overall behavior" and
/// its communication is "entirely 4-byte all-reduce operations".
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
fn chaste_ksp_dominates_and_is_4byte_allreduce() {
    // The paper's full 250 timesteps, so the fixed mesh-input cost doesn't
    // dominate (still <2 s of wall time to simulate).
    let w = Chaste::default();
    let (res, rep) = cloudsim::Experiment::new(&w, &presets::dcc(), 32)
        .repeats(1)
        .run_once()
        .unwrap();
    let ksp = rep.section("KSp").expect("KSp");
    assert!(
        ksp.wall.mean / res.elapsed_secs() > 0.40,
        "KSp dominates: {} of {}",
        ksp.wall.mean,
        res.elapsed_secs()
    );
    let top = &ksp.calls[0];
    assert_eq!(top.call, cloudsim::sim_mpi::MpiKind::Allreduce);
    assert_eq!(top.bucket_bytes, 4, "top call must be the 4-byte allreduce");
}

/// Per-section analysis: DCC shows comm "in far greater proportion" with
/// a more irregular per-rank imbalance (Figure 7).
#[test]
fn fig7_dcc_comm_proportion_exceeds_vayu() {
    let w = MetUm { timesteps: 3 };
    let grab = |c: &ClusterSpec| {
        let (_, rep) = cloudsim::Experiment::new(&w, c, 32)
            .repeats(1)
            .run_once()
            .unwrap();
        rep.section_rank_breakdown[cloudsim::workloads::metum::SEC_ATM_STEP as usize].clone()
    };
    let vayu = grab(&presets::vayu());
    let dcc = grab(&presets::dcc());
    let frac = |rows: &[(f64, f64)]| {
        let comm: f64 = rows.iter().map(|r| r.1).sum();
        let comp: f64 = rows.iter().map(|r| r.0).sum();
        comm / (comm + comp)
    };
    assert!(
        frac(&dcc) > frac(&vayu) * 1.3 && frac(&dcc) - frac(&vayu) > 0.04,
        "dcc {:.3} vayu {:.3}",
        frac(&dcc),
        frac(&vayu)
    );
}
