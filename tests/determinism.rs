//! Determinism and structural-validity sweeps across the whole stack.

use cloudsim::prelude::*;

/// Same seed, same everything: the whole pipeline is bit-reproducible.
#[test]
fn full_pipeline_reproducible() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Ft, Class::S)),
        Box::new(Npb::new(Kernel::Lu, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
        Box::new(Chaste {
            timesteps: 3,
            cg_iters: 10,
        }),
    ];
    for w in &workloads {
        for c in [presets::dcc(), presets::ec2(), presets::vayu()] {
            let mut job = w.build(16);
            let cfg = SimConfig::default();
            let a = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            let b = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            assert_eq!(a.elapsed, b.elapsed, "{} on {}", w.name(), c.name);
            assert_eq!(a.ops_executed, b.ops_executed);
            for (x, y) in a.ranks.iter().zip(&b.ranks) {
                assert_eq!(x, y);
            }
        }
    }
}

/// Different seeds change elapsed time on the noisy platforms but never on
/// the noise-free sections of the ledger (ops executed).
#[test]
fn seeds_only_move_noise() {
    let w = Npb::new(Kernel::Cg, Class::S);
    let c = presets::dcc();
    let mut job = w.build(16);
    let mut elapsed = Vec::new();
    for seed in 0..4u64 {
        let cfg = SimConfig {
            seed,
            ..Default::default()
        };
        let r = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
        elapsed.push(r.elapsed);
        assert_eq!(
            r.ops_executed,
            run_job(&mut job, &c, &cfg, &mut NullSink)
                .unwrap()
                .ops_executed
        );
    }
    let distinct: std::collections::HashSet<_> = elapsed.iter().collect();
    assert!(
        distinct.len() > 1,
        "jitter must vary with seed: {elapsed:?}"
    );
}

/// Every workload at every paper rank count yields a structurally valid
/// job (full matching of sends/recvs/exchanges/collectives).
#[test]
fn all_jobs_validate_at_paper_rank_counts() {
    for k in Kernel::all() {
        let w = Npb::new(k, Class::S);
        for np in k.paper_np_sweep() {
            w.build(np).validate().unwrap_or_else(|e| {
                panic!("{} np={np}: {e}", w.name());
            });
        }
    }
    for np in [8usize, 16, 24, 32, 48, 64] {
        MetUm { timesteps: 2 }.build(np).validate().unwrap();
        Chaste {
            timesteps: 2,
            cg_iters: 5,
        }
        .build(np)
        .validate()
        .unwrap();
    }
}

/// Time conservation at the job level: per rank, comp + comm + io == wall
/// (section markers are the only free ops and cost nothing).
#[test]
fn ledger_conservation_across_workloads() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Mg, Class::S)),
        Box::new(Npb::new(Kernel::Bt, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let np = 16;
        let (res, _) = cloudsim::Experiment::new(w.as_ref(), &presets::ec2(), np)
            .repeats(1)
            .run_once()
            .unwrap();
        for (i, t) in res.ranks.iter().enumerate() {
            assert_eq!(
                t.other(),
                cloudsim::sim_des::SimDur::ZERO,
                "{} rank {i}: {t:?}",
                w.name()
            );
        }
    }
}

/// The engine never leaves unreceived messages behind (checked by the
/// engine's debug assertion, exercised here in release too via elapsed
/// consistency: rerunning a job after building it twice gives equal ops).
#[test]
fn rebuild_gives_identical_jobs() {
    let w = Npb::new(Kernel::Lu, Class::S);
    let mut a = w.build(8);
    let mut b = w.build(8);
    assert_eq!(a.materialized_copy(), b.materialized_copy());
    assert_eq!(a.meta.section_names, b.meta.section_names);
}

/// Fault-injection fuzz: random platform/workload/rate combinations, run
/// twice with the same seed, must agree bit-for-bit — elapsed, restart
/// count, every per-rank ledger — whether they succeed or exhaust their
/// retry budget. Time conservation must hold with the fault column
/// included, and a restarted run must show fault time in its IPM report.
#[test]
fn fault_injection_is_bit_reproducible() {
    use cloudsim::sim_des::{DetRng, SimDur};
    use cloudsim::workloads::{CheckpointPolicy, Checkpointed};
    let kernels = [Kernel::Cg, Kernel::Mg, Kernel::Is, Kernel::Lu];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let mut rng = DetRng::new(0xF42, 1);
    for case in 0..8u64 {
        let w = Npb::new(kernels[rng.index(kernels.len())], Class::S);
        let c = &platforms[rng.index(platforms.len())];
        let np = [4usize, 8, 16][rng.index(3)];
        let (base, _) = cloudsim::Experiment::new(&w, c, np).run_once().unwrap();
        let t0 = base.elapsed_secs().max(1e-3);
        let preset = FaultSpec::preset_for(c);
        let spec = FaultSpec {
            model: preset
                .model
                .with_rates_scaled((1 + rng.index(8)) as f64 * 3600.0 / t0),
            retry: RetryPolicy::default(),
            restart_delay_secs: 0.05 * t0,
            horizon_secs: 20.0 * t0,
            recovery: RecoveryStrategy::Restart,
            sdc_threshold: 0.01,
        };
        let ck = Checkpointed::new(&w, CheckpointPolicy::new(3, 1 << 20));
        for wl in [&w as &dyn Workload, &ck] {
            let run = || {
                cloudsim::Experiment::new(wl, c, np)
                    .seed(0xABC ^ case)
                    .faults(spec.clone())
                    .run_once()
            };
            match (run(), run()) {
                (Ok((a, ra)), Ok((b, _))) => {
                    assert_eq!(a.elapsed, b.elapsed, "case {case} {}", wl.name());
                    assert_eq!(a.restarts, b.restarts);
                    assert_eq!(a.ops_executed, b.ops_executed);
                    for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
                        assert_eq!(x, y, "case {case} rank {r}");
                        // comp + comm + io + fault == wall, even under faults.
                        assert_eq!(x.other(), SimDur::ZERO, "case {case} rank {r}: {x:?}");
                    }
                    // The profiler's FAULT/RESTART attribution must agree
                    // with the engine's own fault ledger. (A restart gap can
                    // be zero when every rank died at the relaunch instant,
                    // so "restarts > 0 implies fault > 0" would be too
                    // strong.)
                    let ipm_fault = ra.global.fault.mean * ra.global.fault.n as f64;
                    let eng_fault = a.fault_total_secs();
                    assert!(
                        (ipm_fault - eng_fault).abs() <= 1e-6 * eng_fault.max(1.0),
                        "case {case}: ipm {ipm_fault} vs engine {eng_fault}"
                    );
                }
                (Err(e1), Err(e2)) => {
                    // Even failure is deterministic: same error, same spot.
                    assert_eq!(format!("{e1:?}"), format!("{e2:?}"), "case {case}");
                }
                (a, b) => panic!(
                    "case {case} {}: non-deterministic outcome: {:?} vs {:?}",
                    wl.name(),
                    a.map(|(r, _)| r.elapsed),
                    b.map(|(r, _)| r.elapsed)
                ),
            }
        }
    }
}

/// SDC-injection fuzz: random platform/workload/recovery-strategy
/// combinations with silent corruption enabled, each run from the streamed
/// job AND from a fully materialized copy of the same programs. Laziness
/// must be unobservable even through verification cuts, rollbacks and
/// shrink recoveries: elapsed, every recovery counter and every per-rank
/// ledger agree bit-for-bit, and time conservation holds throughout.
#[test]
fn sdc_injection_streamed_vs_materialized_bit_identical() {
    use cloudsim::sim_des::{DetRng, SimDur};
    let kernels = [Kernel::Cg, Kernel::Mg, Kernel::Lu];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let mut rng = DetRng::new(0x5DC, 2);
    for case in 0..6u64 {
        let w = Npb::new(kernels[rng.index(kernels.len())], Class::S);
        let c = &platforms[rng.index(platforms.len())];
        let np = [4usize, 8, 16][rng.index(3)];
        let (base, _) = cloudsim::Experiment::new(&w, c, np).run_once().unwrap();
        let t0 = base.elapsed_secs().max(1e-3);
        let preset = FaultSpec::preset_for(c);
        let recovery = match rng.index(3) {
            0 => RecoveryStrategy::Restart,
            1 => RecoveryStrategy::AbftRollback,
            _ => RecoveryStrategy::ShrinkSpare {
                spares: 2,
                respawn_delay_secs: 0.01 * t0,
            },
        };
        let spec = FaultSpec {
            model: preset
                .model
                .with_rates_scaled((1 + rng.index(4)) as f64 * 3600.0 / t0)
                // A few silent flips per node per fault-free runtime.
                .with_sdc((1 + rng.index(4)) as f64 * 3600.0 / t0, 1.0),
            retry: RetryPolicy::default(),
            restart_delay_secs: 0.05 * t0,
            horizon_secs: 20.0 * t0,
            recovery,
            sdc_threshold: 0.01,
        };
        let vw = Verified::new(&w, VerifyPolicy::new(2, 1e6, 1 << 20));
        let ck = Checkpointed::new(&vw, CheckpointPolicy::new(5, 1 << 20));
        let mut streamed = ck.build(np);
        assert!(streamed.is_fully_streamed(), "case {case}");
        let mut materialized = JobSpec::from_programs(
            streamed.meta.name.clone(),
            streamed.materialized_copy(),
            streamed.meta.section_names.clone(),
        );
        let cfg = SimConfig {
            seed: 0xD5C ^ case,
            faults: Some(spec),
            ..Default::default()
        };
        let a = run_job(&mut streamed, c, &cfg, &mut NullSink).unwrap();
        let b = run_job(&mut materialized, c, &cfg, &mut NullSink).unwrap();
        assert_eq!(a.elapsed, b.elapsed, "case {case} on {}", c.name);
        assert_eq!(a.ops_executed, b.ops_executed, "case {case}");
        assert_eq!(
            (a.restarts, a.rollbacks, a.shrinks),
            (b.restarts, b.rollbacks, b.shrinks),
            "case {case}"
        );
        assert_eq!(
            (a.sdc_detected, a.sdc_undetected),
            (b.sdc_detected, b.sdc_undetected),
            "case {case}"
        );
        for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
            assert_eq!(x, y, "case {case} rank {r}");
            assert_eq!(x.other(), SimDur::ZERO, "case {case} rank {r}: {x:?}");
        }
    }
}

/// Streamed programs are rewind-safe: draining a job twice yields the same
/// op sequence both times (generators are pure functions of block index).
#[test]
fn streamed_programs_rewind_to_identical_traces() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Is, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let mut job = w.build(8);
        assert!(job.is_fully_streamed(), "{}", w.name());
        let first = job.materialized_copy();
        let second = job.materialized_copy();
        assert_eq!(first, second, "{}", w.name());
    }
}

/// Profiling must be observation-only: running with a collecting IPM sink
/// and with `NullSink` (which lets the engine skip building `ProfEvent`s
/// entirely) must produce identical simulation results.
#[test]
fn profiling_does_not_perturb_results() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        for c in [presets::vayu(), presets::dcc()] {
            let mut job = w.build(16);
            let cfg = SimConfig::default();
            let bare = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            let (profiled, _report) = profile_run(&mut job, &c, &cfg).unwrap();
            assert_eq!(bare.elapsed, profiled.elapsed, "{} on {}", w.name(), c.name);
            assert_eq!(bare.ops_executed, profiled.ops_executed);
            for (x, y) in bare.ranks.iter().zip(&profiled.ranks) {
                assert_eq!(x, y, "{} on {}", w.name(), c.name);
            }
        }
    }
}

/// Hash-map iteration order must never reach results. The engine's maps
/// are keyed with a deterministic hasher, but iteration order still
/// depends on capacity and insertion history — so a run that starts from
/// a different ambient heap/map state (here: after simulating unrelated
/// jobs of various sizes first) would diverge if any result-bearing code
/// path iterated a map. A cold-process run and a "dirty" in-process rerun
/// must match exactly.
#[test]
fn ambient_state_does_not_leak_into_results() {
    let c = presets::vayu();
    let cfg = SimConfig::default();
    let run_cg = || {
        let mut job = Npb::new(Kernel::Cg, Class::S).build(16);
        run_job(&mut job, &c, &cfg, &mut NullSink).unwrap()
    };
    let cold = run_cg();
    // Perturb: different workloads, rank counts and a profiled run grow
    // and shuffle every internal table before the rerun.
    for np in [8usize, 32, 64] {
        let mut job = Npb::new(Kernel::Is, Class::S).build(np);
        run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
    }
    let mut job = MetUm { timesteps: 2 }.build(32);
    profile_run(&mut job, &c, &cfg).unwrap();
    let dirty = run_cg();
    assert_eq!(cold.elapsed, dirty.elapsed);
    assert_eq!(cold.ops_executed, dirty.ops_executed);
    for (x, y) in cold.ranks.iter().zip(&dirty.ranks) {
        assert_eq!(x, y);
    }
}

// ---------------------------------------------------------------------------
// Golden-digest regression pinning.
//
// The engine hot path has been optimized repeatedly (streamed programs,
// indexed channels, memoized collective layouts, compute-op fusion, the
// event-queue fast path). Every optimization must be *unobservable*: the
// same job on the same platform with the same seed must produce a
// bit-identical `SimResult` and an identical IPM report. These tests pin
// digests of both across seeds x workloads x platforms — including runs
// with fault injection and silent-data-corruption recovery — against
// `tests/golden_digests.txt`, which was recorded with the pre-optimization
// engine. Any fast path that changes a single clock tick, ledger entry or
// report line fails here.
//
// Regenerate (only when an *intentional* semantic change lands) with:
//     UPDATE_GOLDEN=1 cargo test --test determinism golden -- --ignored --nocapture
// (the update writer is the same test; it rewrites the file in place).

mod golden {
    use cloudsim::prelude::*;
    use cloudsim::workloads::osu::OsuCollective;

    const GOLDEN_PATH: &str = "tests/golden_digests.txt";

    /// FNV-1a, 64-bit: stable, dependency-free content digest.
    struct Fnv(u64);
    impl Fnv {
        fn new() -> Self {
            Fnv(0xcbf29ce484222325)
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
        fn u64(&mut self, v: u64) {
            self.write(&v.to_le_bytes());
        }
    }

    /// Digest every numeric field of a `SimResult`, in nanosecond ticks —
    /// bit-exact, no float formatting in the loop.
    fn digest_result(r: &SimResult) -> u64 {
        let mut h = Fnv::new();
        h.u64(r.elapsed.0);
        h.u64(r.ops_executed);
        h.u64(r.restarts);
        h.u64(r.rollbacks);
        h.u64(r.shrinks);
        h.u64(r.sdc_detected);
        h.u64(r.sdc_undetected);
        for t in &r.ranks {
            h.u64(t.wall.0);
            h.u64(t.comp.0);
            h.u64(t.comm.0);
            h.u64(t.io.0);
            h.u64(t.fault.0);
        }
        h.0
    }

    /// Digest the rendered IPM report — sections, call hash, banners.
    fn digest_report(rep: &IpmReport) -> u64 {
        let mut h = Fnv::new();
        h.write(rep.to_text().as_bytes());
        h.0
    }

    /// The pinned matrix: every entry is (label, digest_sim, digest_ipm).
    fn compute_digests() -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];

        // Fault-free: CG, MetUM and an OSU collective, profiled, 8 seeds.
        let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
            ("cg.S.np16", Box::new(Npb::new(Kernel::Cg, Class::S))),
            ("metum.2ts.np16", Box::new(MetUm { timesteps: 2 })),
            ("osu.allreduce4.np8", Box::new(OsuCollective::allreduce(4))),
        ];
        for (label, w) in &workloads {
            let np = if label.ends_with("np8") { 8 } else { 16 };
            let mut job = w.build(np);
            for c in &platforms {
                for seed in 0..8u64 {
                    let cfg = SimConfig {
                        seed,
                        ..Default::default()
                    };
                    let (r, rep) = profile_run(&mut job, c, &cfg).unwrap();
                    out.push((
                        format!("{label}/{}/seed{seed}", c.name),
                        digest_result(&r),
                        digest_report(&rep),
                    ));
                }
            }
        }

        // Faulted: preempt-heavy CG with checkpoints, and SDC with ABFT
        // verification cuts — the recovery paths the fast paths must not
        // perturb. Profiled so FAULT/RESTART/VERIFY attribution is pinned.
        let w = Npb::new(Kernel::Cg, Class::S);
        let vw = Verified::new(&w, VerifyPolicy::new(2, 1e6, 1 << 20));
        let ck = Checkpointed::new(&vw, CheckpointPolicy::new(5, 1 << 20));
        let mut job = ck.build(16);
        for c in &platforms {
            let preset = FaultSpec::preset_for(c);
            let spec = FaultSpec {
                model: preset
                    .model
                    .clone()
                    .with_rates_scaled(3600.0 * 500.0)
                    .with_sdc(3600.0 * 200.0, 1.0),
                horizon_secs: 30.0,
                recovery: RecoveryStrategy::AbftRollback,
                // Generous budget: crash windows at x500 scale must stall,
                // not abort, so the digests cover long retry chains.
                retry: RetryPolicy {
                    timeout_secs: 1.0,
                    backoff: 2.0,
                    max_retries: 500,
                    max_delay_secs: 3600.0,
                },
                ..preset
            };
            for seed in 0..8u64 {
                let cfg = SimConfig {
                    seed,
                    faults: Some(spec.clone()),
                    ..Default::default()
                };
                let (r, rep) = profile_run(&mut job, c, &cfg).unwrap();
                out.push((
                    format!("cg.S.np16+faults+sdc/{}/seed{seed}", c.name),
                    digest_result(&r),
                    digest_report(&rep),
                ));
            }
        }
        out
    }

    fn render(digests: &[(String, u64, u64)]) -> String {
        let mut s = String::from(
            "# Golden SimResult + IPM digests, recorded with the pre-optimization engine.\n\
             # label\tsim_digest\tipm_digest\n",
        );
        for (label, sim, ipm) in digests {
            s.push_str(&format!("{label}\t{sim:016x}\t{ipm:016x}\n"));
        }
        s
    }

    /// The regression gate: every digest must match the committed file.
    #[test]
    fn golden_digests_are_bit_identical() {
        let digests = compute_digests();
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(GOLDEN_PATH, render(&digests)).unwrap();
            eprintln!("golden: wrote {} entries to {GOLDEN_PATH}", digests.len());
            return;
        }
        let committed = std::fs::read_to_string(GOLDEN_PATH)
            .expect("tests/golden_digests.txt missing — run with UPDATE_GOLDEN=1 to record");
        let mut want = std::collections::BTreeMap::new();
        for line in committed.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let mut it = line.split('\t');
            let label = it.next().unwrap().to_string();
            let sim = u64::from_str_radix(it.next().unwrap(), 16).unwrap();
            let ipm = u64::from_str_radix(it.next().unwrap(), 16).unwrap();
            want.insert(label, (sim, ipm));
        }
        assert_eq!(want.len(), digests.len(), "golden entry count drifted");
        for (label, sim, ipm) in &digests {
            let (wsim, wipm) = want
                .get(label)
                .unwrap_or_else(|| panic!("no golden entry for {label}"));
            assert_eq!(sim, wsim, "{label}: SimResult digest changed");
            assert_eq!(ipm, wipm, "{label}: IPM report digest changed");
        }
    }
}
