//! Determinism and structural-validity sweeps across the whole stack.

use cloudsim::prelude::*;

/// Same seed, same everything: the whole pipeline is bit-reproducible.
#[test]
fn full_pipeline_reproducible() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Ft, Class::S)),
        Box::new(Npb::new(Kernel::Lu, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
        Box::new(Chaste {
            timesteps: 3,
            cg_iters: 10,
        }),
    ];
    for w in &workloads {
        for c in [presets::dcc(), presets::ec2(), presets::vayu()] {
            let mut job = w.build(16);
            let cfg = SimConfig::default();
            let a = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            let b = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            assert_eq!(a.elapsed, b.elapsed, "{} on {}", w.name(), c.name);
            assert_eq!(a.ops_executed, b.ops_executed);
            for (x, y) in a.ranks.iter().zip(&b.ranks) {
                assert_eq!(x, y);
            }
        }
    }
}

/// Different seeds change elapsed time on the noisy platforms but never on
/// the noise-free sections of the ledger (ops executed).
#[test]
fn seeds_only_move_noise() {
    let w = Npb::new(Kernel::Cg, Class::S);
    let c = presets::dcc();
    let mut job = w.build(16);
    let mut elapsed = Vec::new();
    for seed in 0..4u64 {
        let cfg = SimConfig {
            seed,
            ..Default::default()
        };
        let r = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
        elapsed.push(r.elapsed);
        assert_eq!(
            r.ops_executed,
            run_job(&mut job, &c, &cfg, &mut NullSink)
                .unwrap()
                .ops_executed
        );
    }
    let distinct: std::collections::HashSet<_> = elapsed.iter().collect();
    assert!(
        distinct.len() > 1,
        "jitter must vary with seed: {elapsed:?}"
    );
}

/// Every workload at every paper rank count yields a structurally valid
/// job (full matching of sends/recvs/exchanges/collectives).
#[test]
fn all_jobs_validate_at_paper_rank_counts() {
    for k in Kernel::all() {
        let w = Npb::new(k, Class::S);
        for np in k.paper_np_sweep() {
            w.build(np).validate().unwrap_or_else(|e| {
                panic!("{} np={np}: {e}", w.name());
            });
        }
    }
    for np in [8usize, 16, 24, 32, 48, 64] {
        MetUm { timesteps: 2 }.build(np).validate().unwrap();
        Chaste {
            timesteps: 2,
            cg_iters: 5,
        }
        .build(np)
        .validate()
        .unwrap();
    }
}

/// Time conservation at the job level: per rank, comp + comm + io == wall
/// (section markers are the only free ops and cost nothing).
#[test]
fn ledger_conservation_across_workloads() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Mg, Class::S)),
        Box::new(Npb::new(Kernel::Bt, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let np = 16;
        let (res, _) = cloudsim::Experiment::new(w.as_ref(), &presets::ec2(), np)
            .repeats(1)
            .run_once()
            .unwrap();
        for (i, t) in res.ranks.iter().enumerate() {
            assert_eq!(
                t.other(),
                cloudsim::sim_des::SimDur::ZERO,
                "{} rank {i}: {t:?}",
                w.name()
            );
        }
    }
}

/// The engine never leaves unreceived messages behind (checked by the
/// engine's debug assertion, exercised here in release too via elapsed
/// consistency: rerunning a job after building it twice gives equal ops).
#[test]
fn rebuild_gives_identical_jobs() {
    let w = Npb::new(Kernel::Lu, Class::S);
    let mut a = w.build(8);
    let mut b = w.build(8);
    assert_eq!(a.materialized_copy(), b.materialized_copy());
    assert_eq!(a.meta.section_names, b.meta.section_names);
}

/// Streamed programs are rewind-safe: draining a job twice yields the same
/// op sequence both times (generators are pure functions of block index).
#[test]
fn streamed_programs_rewind_to_identical_traces() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Is, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let mut job = w.build(8);
        assert!(job.is_fully_streamed(), "{}", w.name());
        let first = job.materialized_copy();
        let second = job.materialized_copy();
        assert_eq!(first, second, "{}", w.name());
    }
}
