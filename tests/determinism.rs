//! Determinism and structural-validity sweeps across the whole stack.

use cloudsim::prelude::*;

/// Same seed, same everything: the whole pipeline is bit-reproducible.
#[test]
fn full_pipeline_reproducible() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Ft, Class::S)),
        Box::new(Npb::new(Kernel::Lu, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
        Box::new(Chaste {
            timesteps: 3,
            cg_iters: 10,
        }),
    ];
    for w in &workloads {
        for c in [presets::dcc(), presets::ec2(), presets::vayu()] {
            let mut job = w.build(16);
            let cfg = SimConfig::default();
            let a = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            let b = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
            assert_eq!(a.elapsed, b.elapsed, "{} on {}", w.name(), c.name);
            assert_eq!(a.ops_executed, b.ops_executed);
            for (x, y) in a.ranks.iter().zip(&b.ranks) {
                assert_eq!(x, y);
            }
        }
    }
}

/// Different seeds change elapsed time on the noisy platforms but never on
/// the noise-free sections of the ledger (ops executed).
#[test]
fn seeds_only_move_noise() {
    let w = Npb::new(Kernel::Cg, Class::S);
    let c = presets::dcc();
    let mut job = w.build(16);
    let mut elapsed = Vec::new();
    for seed in 0..4u64 {
        let cfg = SimConfig {
            seed,
            ..Default::default()
        };
        let r = run_job(&mut job, &c, &cfg, &mut NullSink).unwrap();
        elapsed.push(r.elapsed);
        assert_eq!(
            r.ops_executed,
            run_job(&mut job, &c, &cfg, &mut NullSink)
                .unwrap()
                .ops_executed
        );
    }
    let distinct: std::collections::HashSet<_> = elapsed.iter().collect();
    assert!(
        distinct.len() > 1,
        "jitter must vary with seed: {elapsed:?}"
    );
}

/// Every workload at every paper rank count yields a structurally valid
/// job (full matching of sends/recvs/exchanges/collectives).
#[test]
fn all_jobs_validate_at_paper_rank_counts() {
    for k in Kernel::all() {
        let w = Npb::new(k, Class::S);
        for np in k.paper_np_sweep() {
            w.build(np).validate().unwrap_or_else(|e| {
                panic!("{} np={np}: {e}", w.name());
            });
        }
    }
    for np in [8usize, 16, 24, 32, 48, 64] {
        MetUm { timesteps: 2 }.build(np).validate().unwrap();
        Chaste {
            timesteps: 2,
            cg_iters: 5,
        }
        .build(np)
        .validate()
        .unwrap();
    }
}

/// Time conservation at the job level: per rank, comp + comm + io == wall
/// (section markers are the only free ops and cost nothing).
#[test]
fn ledger_conservation_across_workloads() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Mg, Class::S)),
        Box::new(Npb::new(Kernel::Bt, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let np = 16;
        let (res, _) = cloudsim::Experiment::new(w.as_ref(), &presets::ec2(), np)
            .repeats(1)
            .run_once()
            .unwrap();
        for (i, t) in res.ranks.iter().enumerate() {
            assert_eq!(
                t.other(),
                cloudsim::sim_des::SimDur::ZERO,
                "{} rank {i}: {t:?}",
                w.name()
            );
        }
    }
}

/// The engine never leaves unreceived messages behind (checked by the
/// engine's debug assertion, exercised here in release too via elapsed
/// consistency: rerunning a job after building it twice gives equal ops).
#[test]
fn rebuild_gives_identical_jobs() {
    let w = Npb::new(Kernel::Lu, Class::S);
    let mut a = w.build(8);
    let mut b = w.build(8);
    assert_eq!(a.materialized_copy(), b.materialized_copy());
    assert_eq!(a.meta.section_names, b.meta.section_names);
}

/// Fault-injection fuzz: random platform/workload/rate combinations, run
/// twice with the same seed, must agree bit-for-bit — elapsed, restart
/// count, every per-rank ledger — whether they succeed or exhaust their
/// retry budget. Time conservation must hold with the fault column
/// included, and a restarted run must show fault time in its IPM report.
#[test]
fn fault_injection_is_bit_reproducible() {
    use cloudsim::sim_des::{DetRng, SimDur};
    use cloudsim::workloads::{CheckpointPolicy, Checkpointed};
    let kernels = [Kernel::Cg, Kernel::Mg, Kernel::Is, Kernel::Lu];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let mut rng = DetRng::new(0xF42, 1);
    for case in 0..8u64 {
        let w = Npb::new(kernels[rng.index(kernels.len())], Class::S);
        let c = &platforms[rng.index(platforms.len())];
        let np = [4usize, 8, 16][rng.index(3)];
        let (base, _) = cloudsim::Experiment::new(&w, c, np).run_once().unwrap();
        let t0 = base.elapsed_secs().max(1e-3);
        let preset = FaultSpec::preset_for(c);
        let spec = FaultSpec {
            model: preset
                .model
                .with_rates_scaled((1 + rng.index(8)) as f64 * 3600.0 / t0),
            retry: RetryPolicy::default(),
            restart_delay_secs: 0.05 * t0,
            horizon_secs: 20.0 * t0,
            recovery: RecoveryStrategy::Restart,
            sdc_threshold: 0.01,
        };
        let ck = Checkpointed::new(&w, CheckpointPolicy::new(3, 1 << 20));
        for wl in [&w as &dyn Workload, &ck] {
            let run = || {
                cloudsim::Experiment::new(wl, c, np)
                    .seed(0xABC ^ case)
                    .faults(spec.clone())
                    .run_once()
            };
            match (run(), run()) {
                (Ok((a, ra)), Ok((b, _))) => {
                    assert_eq!(a.elapsed, b.elapsed, "case {case} {}", wl.name());
                    assert_eq!(a.restarts, b.restarts);
                    assert_eq!(a.ops_executed, b.ops_executed);
                    for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
                        assert_eq!(x, y, "case {case} rank {r}");
                        // comp + comm + io + fault == wall, even under faults.
                        assert_eq!(x.other(), SimDur::ZERO, "case {case} rank {r}: {x:?}");
                    }
                    // The profiler's FAULT/RESTART attribution must agree
                    // with the engine's own fault ledger. (A restart gap can
                    // be zero when every rank died at the relaunch instant,
                    // so "restarts > 0 implies fault > 0" would be too
                    // strong.)
                    let ipm_fault = ra.global.fault.mean * ra.global.fault.n as f64;
                    let eng_fault = a.fault_total_secs();
                    assert!(
                        (ipm_fault - eng_fault).abs() <= 1e-6 * eng_fault.max(1.0),
                        "case {case}: ipm {ipm_fault} vs engine {eng_fault}"
                    );
                }
                (Err(e1), Err(e2)) => {
                    // Even failure is deterministic: same error, same spot.
                    assert_eq!(format!("{e1:?}"), format!("{e2:?}"), "case {case}");
                }
                (a, b) => panic!(
                    "case {case} {}: non-deterministic outcome: {:?} vs {:?}",
                    wl.name(),
                    a.map(|(r, _)| r.elapsed),
                    b.map(|(r, _)| r.elapsed)
                ),
            }
        }
    }
}

/// SDC-injection fuzz: random platform/workload/recovery-strategy
/// combinations with silent corruption enabled, each run from the streamed
/// job AND from a fully materialized copy of the same programs. Laziness
/// must be unobservable even through verification cuts, rollbacks and
/// shrink recoveries: elapsed, every recovery counter and every per-rank
/// ledger agree bit-for-bit, and time conservation holds throughout.
#[test]
fn sdc_injection_streamed_vs_materialized_bit_identical() {
    use cloudsim::sim_des::{DetRng, SimDur};
    let kernels = [Kernel::Cg, Kernel::Mg, Kernel::Lu];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let mut rng = DetRng::new(0x5DC, 2);
    for case in 0..6u64 {
        let w = Npb::new(kernels[rng.index(kernels.len())], Class::S);
        let c = &platforms[rng.index(platforms.len())];
        let np = [4usize, 8, 16][rng.index(3)];
        let (base, _) = cloudsim::Experiment::new(&w, c, np).run_once().unwrap();
        let t0 = base.elapsed_secs().max(1e-3);
        let preset = FaultSpec::preset_for(c);
        let recovery = match rng.index(3) {
            0 => RecoveryStrategy::Restart,
            1 => RecoveryStrategy::AbftRollback,
            _ => RecoveryStrategy::ShrinkSpare {
                spares: 2,
                respawn_delay_secs: 0.01 * t0,
            },
        };
        let spec = FaultSpec {
            model: preset
                .model
                .with_rates_scaled((1 + rng.index(4)) as f64 * 3600.0 / t0)
                // A few silent flips per node per fault-free runtime.
                .with_sdc((1 + rng.index(4)) as f64 * 3600.0 / t0, 1.0),
            retry: RetryPolicy::default(),
            restart_delay_secs: 0.05 * t0,
            horizon_secs: 20.0 * t0,
            recovery,
            sdc_threshold: 0.01,
        };
        let vw = Verified::new(&w, VerifyPolicy::new(2, 1e6, 1 << 20));
        let ck = Checkpointed::new(&vw, CheckpointPolicy::new(5, 1 << 20));
        let mut streamed = ck.build(np);
        assert!(streamed.is_fully_streamed(), "case {case}");
        let mut materialized = JobSpec::from_programs(
            streamed.meta.name.clone(),
            streamed.materialized_copy(),
            streamed.meta.section_names.clone(),
        );
        let cfg = SimConfig {
            seed: 0xD5C ^ case,
            faults: Some(spec),
            ..Default::default()
        };
        let a = run_job(&mut streamed, c, &cfg, &mut NullSink).unwrap();
        let b = run_job(&mut materialized, c, &cfg, &mut NullSink).unwrap();
        assert_eq!(a.elapsed, b.elapsed, "case {case} on {}", c.name);
        assert_eq!(a.ops_executed, b.ops_executed, "case {case}");
        assert_eq!(
            (a.restarts, a.rollbacks, a.shrinks),
            (b.restarts, b.rollbacks, b.shrinks),
            "case {case}"
        );
        assert_eq!(
            (a.sdc_detected, a.sdc_undetected),
            (b.sdc_detected, b.sdc_undetected),
            "case {case}"
        );
        for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
            assert_eq!(x, y, "case {case} rank {r}");
            assert_eq!(x.other(), SimDur::ZERO, "case {case} rank {r}: {x:?}");
        }
    }
}

/// Streamed programs are rewind-safe: draining a job twice yields the same
/// op sequence both times (generators are pure functions of block index).
#[test]
fn streamed_programs_rewind_to_identical_traces() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Npb::new(Kernel::Cg, Class::S)),
        Box::new(Npb::new(Kernel::Is, Class::S)),
        Box::new(MetUm { timesteps: 2 }),
    ];
    for w in &workloads {
        let mut job = w.build(8);
        assert!(job.is_fully_streamed(), "{}", w.name());
        let first = job.materialized_copy();
        let second = job.materialized_copy();
        assert_eq!(first, second, "{}", w.name());
    }
}
