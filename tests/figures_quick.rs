//! End-to-end tests of the figure drivers at reduced scale: every table
//! builds, has the right shape, and preserves the paper's orderings.

use cloudsim::{figures, ReproConfig};

fn cfg() -> ReproConfig {
    ReproConfig::quick()
}

fn cell(t: &cloudsim::Table, row: usize, col: usize) -> f64 {
    t.rows[row][col].parse().expect("numeric cell")
}

#[test]
fn fig1_bandwidth_orderings() {
    let t = figures::fig1_osu_bandwidth(&cfg());
    assert_eq!(t.headers, vec!["bytes", "dcc", "ec2", "vayu"]);
    // At every size >= 4 KB: vayu > ec2 > dcc.
    for (i, row) in t.rows.iter().enumerate() {
        let bytes: f64 = row[0].parse().unwrap();
        if bytes >= 4096.0 {
            let (d, e, v) = (cell(&t, i, 1), cell(&t, i, 2), cell(&t, i, 3));
            assert!(v > e && e > d, "size {bytes}: {row:?}");
        }
    }
    // Bandwidth is monotone non-decreasing up to the plateau on vayu.
    let first = cell(&t, 0, 3);
    let last = cell(&t, t.rows.len() - 1, 3);
    assert!(last > 10.0 * first);
}

#[test]
fn fig2_latency_orderings() {
    let t = figures::fig2_osu_latency(&cfg());
    for (i, row) in t.rows.iter().enumerate() {
        let (d, e, v) = (cell(&t, i, 1), cell(&t, i, 2), cell(&t, i, 3));
        assert!(d > e && e > v, "{row:?}");
    }
    // Small-message magnitudes match Fig 2.
    assert!(cell(&t, 3, 3) < 5.0, "vayu small-message latency");
    assert!(cell(&t, 3, 1) > 100.0, "dcc small-message latency");
}

#[test]
fn fig3_serial_normalization() {
    let t = figures::fig3_npb_serial(&cfg());
    assert_eq!(t.rows.len(), 8);
    for row in &t.rows {
        let ec2: f64 = row[3].parse().unwrap();
        let vayu: f64 = row[4].parse().unwrap();
        // Faster clock: both below 1; Vayu at least as fast as EC2.
        assert!(vayu < 1.0 && ec2 < 1.0, "{row:?}");
        assert!(vayu <= ec2 + 0.02, "{row:?}");
    }
}

#[test]
fn tab2_platform_ordering_beyond_one_node() {
    let t = figures::tab2_npb_comm(&cfg());
    for row in &t.rows {
        let np: usize = row[1].parse().unwrap();
        let dcc: f64 = row[2].parse().unwrap();
        let ec2: f64 = row[3].parse().unwrap();
        let vayu: f64 = row[4].parse().unwrap();
        // Once DCC spans nodes it dominates everyone (Table II).
        if np >= 16 {
            assert!(
                dcc > ec2 && dcc > vayu,
                "%comm ordering at np={np}: {row:?}"
            );
        }
        // Once EC2 spans nodes too (np >= 32), the full ordering holds —
        // at np=16 EC2 still fits one node and can undercut Vayu, exactly
        // as in the paper's FT column (7.2 vs 7.7).
        if np >= 32 {
            assert!(ec2 > vayu, "%comm ordering at np={np}: {row:?}");
        }
    }
}

#[test]
fn fig5_chaste_shape() {
    let t = figures::fig5_chaste(&cfg());
    // Speedups normalized at np=8.
    assert_eq!(cell(&t, 0, 1), 1.0);
    assert_eq!(cell(&t, 0, 2), 1.0);
    let last = t.rows.len() - 1;
    // Vayu total scales better than DCC total at 64.
    assert!(cell(&t, last, 1) > cell(&t, last, 2), "{:?}", t.rows[last]);
    // KSp drives the totals: Vayu KSp speedup >= Vayu total speedup - slack.
    assert!(cell(&t, last, 3) > cell(&t, last, 1) * 0.6);
}

#[test]
fn fig6_metum_shape() {
    let t = figures::fig6_metum(&cfg());
    let last = t.rows.len() - 1;
    // Vayu scales best; DCC worst among {vayu, dcc}.
    assert!(cell(&t, last, 1) > cell(&t, last, 2), "{:?}", t.rows[last]);
    // EC2-4 at 32 is faster than EC2 packed (higher speedup at same t8
    // base? they have different bases; compare raw times via the note
    // instead — here just require both present and positive).
    for row in &t.rows {
        for c in 1..=4 {
            let v: f64 = row[c].parse().unwrap();
            assert!(v > 0.0, "{row:?}");
        }
    }
}

#[test]
fn tab3_ratio_columns() {
    let t = figures::tab3_metum(&cfg());
    assert_eq!(t.rows.len(), 4);
    // Row order: vayu, dcc, ec2, ec2-4. Vayu ratios are exactly 1.
    assert_eq!(t.rows[0][2], "1.00");
    assert_eq!(t.rows[0][3], "1.00");
    // DCC computes slower than Vayu and communicates much more.
    let rcomp_dcc: f64 = t.rows[1][2].parse().unwrap();
    let rcomm_dcc: f64 = t.rows[1][3].parse().unwrap();
    assert!(rcomp_dcc > 1.2 && rcomp_dcc < 2.0, "rcomp {rcomp_dcc}");
    assert!(rcomm_dcc > 1.5, "rcomm {rcomm_dcc}");
    // EC2 packed computes slowest of all (HyperThread sharing).
    let rcomp_ec2: f64 = t.rows[2][2].parse().unwrap();
    assert!(rcomp_ec2 > rcomp_dcc, "ec2 {rcomp_ec2} dcc {rcomp_dcc}");
    // I/O column ordering: vayu < ec2 < dcc.
    let io: Vec<f64> = (0..3).map(|i| t.rows[i][6].parse().unwrap()).collect();
    assert!(io[0] < io[2] && io[2] < io[1], "{io:?}");
}

#[test]
fn fig7_has_32_ranks_and_csv_roundtrip() {
    let t = figures::fig7_load_balance(&cfg());
    assert_eq!(t.rows.len(), 32);
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 33); // header + 32 ranks
    assert!(csv.starts_with("rank,vayu_comp,vayu_comm,dcc_comp,dcc_comm"));
}
