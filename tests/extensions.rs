//! Integration tests for the beyond-the-paper extensions: non-blocking
//! ops, group collectives, the trace exporter, the advisor and the
//! batch-queue scheduler — exercised through the public facade.

use cloudsim::prelude::*;
use cloudsim::sim_ipm::trace_run;
use cloudsim::sim_mpi::Group;

#[test]
fn overlap_pipeline_through_the_facade() {
    // A 2-node halo pattern written with Irecv/compute/Wait completes and
    // hides most of the transfer on every platform.
    let big = 256 * 1024;
    let compute = Op::Compute {
        flops: 1e8,
        bytes: 0.0,
    };
    for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
        let lc = cluster.node.logical_cores();
        let np = lc + 1;
        let mut progs = vec![vec![]; np];
        progs[0] = vec![
            Op::Isend {
                to: lc as u32,
                bytes: big,
                tag: 0,
                req: 0,
            },
            compute,
            Op::Wait { req: 0 },
        ];
        progs[lc] = vec![
            Op::Irecv {
                from: 0,
                bytes: big,
                tag: 0,
                req: 0,
            },
            compute,
            Op::Wait { req: 0 },
        ];
        let mut job = JobSpec::from_programs("overlap", progs, vec![]);
        let r = run_job(&mut job, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
        // The receiver's wait is bounded by the transfer minus the overlap;
        // total never exceeds compute + full transfer + slack.
        let compute_secs = 1e8 / cluster.rank_rates(&r.placement)[0].flops_rate;
        assert!(
            r.elapsed_secs() < compute_secs + 0.05,
            "{}: {} vs compute {}",
            cluster.name,
            r.elapsed_secs(),
            compute_secs
        );
    }
}

#[test]
fn row_group_collectives_via_facade() {
    // 16 ranks in 4 rows; each row allreduces independently then the world
    // synchronizes. Validates + runs on all platforms.
    let rows: Vec<Group> = (0..4)
        .map(|r| Group::Strided {
            first: r * 4,
            count: 4,
            stride: 1,
        })
        .collect();
    let progs: Vec<Vec<Op>> = (0..16u32)
        .map(|r| {
            vec![
                Op::Compute {
                    flops: 1e7,
                    bytes: 0.0,
                },
                Op::GroupColl {
                    group: rows[(r / 4) as usize],
                    op: CollOp::Allreduce { bytes: 8 },
                },
                Op::Coll(CollOp::Barrier),
            ]
        })
        .collect();
    let mut job = JobSpec::from_programs("rows", progs, vec![]);
    job.validate().unwrap();
    for cluster in [presets::vayu(), presets::dcc()] {
        let r = run_job(&mut job, &cluster, &SimConfig::default(), &mut NullSink).unwrap();
        assert!(r.elapsed_secs() > 0.0);
    }
}

#[test]
fn trace_of_a_real_workload_matches_its_ledger() {
    let w = Npb::new(Kernel::Cg, Class::S);
    let mut job = w.build(8);
    let cluster = presets::ec2();
    let (res, trace) = trace_run(&mut job, &cluster, &SimConfig::default()).unwrap();
    // Per rank, summed span durations by category equal the ledgers.
    for rank in 0..8 {
        let sum = |cat: &str| -> f64 {
            trace
                .spans
                .iter()
                .filter(|s| s.rank == rank && s.cat == cat)
                .map(|s| s.end.since(s.start).as_secs_f64())
                .sum()
        };
        assert!((sum("comp") - res.ranks[rank].comp.as_secs_f64()).abs() < 1e-9);
        assert!((sum("mpi") - res.ranks[rank].comm.as_secs_f64()).abs() < 1e-9);
    }
}

#[test]
fn advisor_agrees_with_direct_simulation() {
    let w = Npb::new(Kernel::Ft, Class::W);
    let rec = cloudsim::advise(&w, 16);
    // The advisor's vayu forecast equals a direct run.
    let direct = cloudsim::Experiment::new(&w, &presets::vayu(), 16)
        .repeats(1)
        .run_once()
        .unwrap()
        .0
        .elapsed_secs();
    let forecast = rec
        .by_time
        .iter()
        .find(|f| f.platform == "vayu")
        .unwrap()
        .elapsed_secs;
    assert!((forecast - direct).abs() < 1e-9);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
fn scheduler_invariants_over_a_profiled_mix() {
    let jobs = cloudsim::synthetic_mix(30, 1.2, 5);
    let caps = cloudsim::Capacities::default();
    for policy in [
        cloudsim::Policy::HpcOnly,
        cloudsim::Policy::CloudBurst { threshold: 0.5 },
    ] {
        let stats = cloudsim::simulate_queue(&jobs, caps, policy);
        assert_eq!(stats.jobs.len(), 30);
        for s in &stats.jobs {
            assert!(s.wait >= 0.0 && s.runtime > 0.0, "{s:?}");
        }
        // Turnaround >= wait always.
        assert!(stats.mean_turnaround >= stats.mean_wait);
    }
}

#[test]
fn figures_plot_pipeline_smoke() {
    // The chart type renders the fig6-style data without panicking on
    // awkward ranges.
    let chart = cloudsim::AsciiChart::new("smoke")
        .series("a", vec![(8.0, 1.0), (16.0, 1.9), (32.0, 3.7), (64.0, 6.9)])
        .series("b", vec![(8.0, 1.0), (16.0, 1.5), (32.0, 1.6), (64.0, 3.1)]);
    let out = chart.render();
    assert!(out.contains("a") && out.contains("b"));
}
