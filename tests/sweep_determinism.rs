//! The deterministic-parallelism contract of the sweep harness: every
//! figure sweep and every custom grid must produce bit-identical output
//! for every worker-thread count, across repeated runs, and — for the
//! figure sweeps — identical to the serially-recorded golden digests in
//! `tests/golden_sched.txt`.

use cloudsim::sim_net::ContentionParams;
use cloudsim::sim_sched::{
    simulate_site_stream, Discipline, LublinMix, NodePool, PlacementPolicy, SiteConfig,
};
use cloudsim::sim_sweep::{cell_seed, fnv64, sweep, MergedDigest, SweepOpts};
use cloudsim::{figures, presets, ReproConfig};

/// The committed golden digest for one label in `tests/golden_sched.txt`.
fn committed_golden(label: &str) -> u64 {
    let committed = std::fs::read_to_string("tests/golden_sched.txt")
        .expect("tests/golden_sched.txt missing — run sched_invariants with UPDATE_GOLDEN=1");
    for line in committed.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut it = line.split('\t');
        if it.next() == Some(label) {
            return u64::from_str_radix(it.next().unwrap(), 16).unwrap();
        }
    }
    panic!("no golden entry for {label}");
}

/// Parallel figure sweeps reproduce the committed (serially recorded)
/// golden digests bit-for-bit at 1, 2 and 8 worker threads.
#[test]
fn figure_sweeps_match_goldens_at_every_thread_count() {
    let cfg = ReproConfig::quick();
    let sched_golden = committed_golden("schedsweep/seed0x5eed0000");
    let fault_golden = committed_golden("faultsched/seed0x5eed0000");
    for threads in [1usize, 2, 8] {
        let opts = SweepOpts::default().with_threads(threads);
        let sched = figures::schedsweep_with(&cfg, &opts).to_text();
        assert_eq!(
            fnv64(sched.as_bytes()),
            sched_golden,
            "schedsweep text drifted at {threads} threads"
        );
        let fault = figures::faultsched_with(&cfg, &opts).to_text();
        assert_eq!(
            fnv64(fault.as_bytes()),
            fault_golden,
            "faultsched text drifted at {threads} threads"
        );
    }
}

/// Back-to-back runs of the same parallel sweep are bit-identical: no
/// wall-clock, thread-identity or allocation-order leakage.
#[test]
fn repeated_parallel_runs_are_bit_identical() {
    let cfg = ReproConfig::quick().with_seed(7);
    let opts = SweepOpts::default().with_threads(8);
    let a = figures::schedsweep_with(&cfg, &opts).to_text();
    let b = figures::schedsweep_with(&cfg, &opts).to_text();
    assert_eq!(a, b);
}

/// A seed-axis grid over the streaming simulator: per-cell seeds derived
/// with [`cell_seed`], per-cell outcome digests folded into a
/// [`MergedDigest`]. One digest definition, three claims: the value is
/// identical across thread counts, identical to a plain serial loop that
/// never touches the harness, and stable across repeated runs.
#[test]
fn stream_grid_digest_is_thread_count_invariant_and_matches_serial() {
    const CELLS: usize = 24;
    const BASE: u64 = 0x00D1_6E57;
    let eval_cell = |cell: usize| -> u64 {
        let cluster = presets::dcc();
        let load = 0.6 + 0.1 * (cell % 5) as f64;
        let site = SiteConfig::new(
            NodePool::partition_of(&cluster, 16),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&cluster.topology.inter),
        );
        let jobs = LublinMix::new(200, 16, load, cell_seed(BASE, cell as u64));
        let mut text = String::new();
        let stats = simulate_site_stream(jobs, &site, |o| {
            text.push_str(&format!(
                "{} {:x} {:x} {} {}\n",
                o.id,
                o.start.to_bits(),
                o.end.to_bits(),
                o.nodes,
                o.completed
            ));
        })
        .unwrap();
        text.push_str(&format!("{:x}\n", stats.makespan.to_bits()));
        fnv64(text.as_bytes())
    };

    // Serial reference: a plain in-order loop, no harness involved.
    let mut serial = MergedDigest::new();
    for cell in 0..CELLS {
        serial.absorb(cell as u64, eval_cell(cell));
    }

    for threads in [1usize, 2, 8] {
        let opts = SweepOpts::default().with_threads(threads);
        let run = || {
            sweep(
                CELLS,
                &opts,
                MergedDigest::new,
                |cell, acc: &mut MergedDigest| acc.absorb(cell as u64, eval_cell(cell)),
                |total, part| total.merge(part),
            )
        };
        assert_eq!(
            run().value(),
            serial.value(),
            "parallel digest != serial at {threads} threads"
        );
        assert_eq!(
            run().value(),
            run().value(),
            "unstable at {threads} threads"
        );
    }
}
